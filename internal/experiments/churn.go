package experiments

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"eden/internal/controller"
	"eden/internal/ctlproto"
	"eden/internal/enclave"
	"eden/internal/funcs"
	"eden/internal/metrics"
	"eden/internal/netsim"
	"eden/internal/telemetry"
)

// ChurnConfig parameterizes the control-plane churn benchmark: a real
// controller fanning policy out to a fleet of persistent agents over TCP
// while a fault plan flaps their connections. It measures the claim the
// delta-distribution protocol makes — resync cost scales with the size of
// the change, not the size of the installed policy.
type ChurnConfig struct {
	// Agents is the fleet size (the paper's target is thousands of end
	// hosts per controller; the default benchmark drives 1000).
	Agents int
	// Rounds is the number of churn rounds after the base-policy install.
	// Each round flaps a subset of agents per the fault plan and pushes a
	// per-agent delta of DeltaOps structural ops to every agent.
	Rounds int
	// PolicyOps is the structural size of the base policy per agent
	// (function install + table + padding rules). Resync cost under churn
	// must NOT scale with this number.
	PolicyOps int
	// DeltaOps is the structural size of each per-round delta. Resync cost
	// under churn SHOULD scale with this number.
	DeltaOps int
	// Seed drives the deterministic churn plan (rotating flap window plus
	// seeded extra flaps from the fault plan's loss rate).
	Seed int64
	// Faults is the churn schedule, reusing netsim's fault-plan vocabulary
	// (see netsim.ParseFaultPlan): FlapDown/FlapPeriod is the fraction of
	// the fleet flapped each round (a rotating window), LossRate adds
	// independent seeded flaps per agent-round, and Links naming agents
	// (e.g. "host0003") force those agents to flap every round. Nil means
	// a flap=4:1 duty cycle — a quarter of the fleet per round.
	Faults *netsim.FaultPlan
	// ResyncLimit overrides the controller's resync fan-out width
	// (0 = controller default).
	ResyncLimit int
	// Timeout bounds each phase's wait for fleet convergence (default 60s
	// real time).
	Timeout time.Duration
	// Metrics, when set, receives the controller's registry for the run.
	Metrics *metrics.Set
	// Flight, when set alongside Metrics, samples the registry once after
	// the base install and once per churn round (ticks use synthetic
	// round-boundary timestamps at the recorder's interval).
	Flight *telemetry.FlightRecorder
}

// DefaultChurnConfig returns the 1k-agent benchmark configuration.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Agents:    1000,
		Rounds:    3,
		PolicyOps: 48,
		DeltaOps:  2,
		Seed:      1,
	}
}

func (cfg *ChurnConfig) withDefaults() {
	if cfg.Agents <= 0 {
		cfg.Agents = 1000
	}
	if cfg.Rounds < 0 {
		cfg.Rounds = 0
	}
	if cfg.PolicyOps < 3 {
		cfg.PolicyOps = 3
	}
	if cfg.DeltaOps <= 0 {
		cfg.DeltaOps = 1
	}
	if cfg.Faults == nil {
		cfg.Faults = &netsim.FaultPlan{FlapPeriod: 4, FlapDown: 1}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
}

// ChurnResult reports one churn run. The plan (who flaps when, which ops
// ship) is deterministic in the config — Digest pins it across runs and
// -parallel settings; the resync counters are measured from the live
// controller and may vary with timing (coalescing folds racing triggers).
type ChurnResult struct {
	Config ChurnConfig

	// Deterministic plan summary.
	Digest        uint64
	FlapsPerRound []int
	Converged     int

	// Measured, from the controller's registry. BaseFull/BaseOps cover
	// the base-install phase; every other counter is churn-phase only
	// (the base-install snapshot is subtracted), so retries or coalesced
	// passes during the install cannot inflate the churn claims.
	BaseFull, BaseOps          int64
	ChurnDelta, ChurnFull      int64
	ChurnOps, ChurnBytes       int64
	Coalesced, Retries, Errors int64
	OpsPerChurnResync          float64
	// MetricsPushes counts OpMetricsPush calls the controller folded;
	// FleetAgents is how many agents appear in its fleet rollups. Every
	// agent pushes a full snapshot per session, so flaps only add pushes.
	MetricsPushes int64
	FleetAgents   int
	Wall          time.Duration
}

// churnSnapshot captures the resync counters that separate the base
// install from the churn phase.
type churnSnapshot struct {
	delta, full, ops, bytes, coalesced, retries, errors int64
}

func snapshotChurn(reg *metrics.Registry) churnSnapshot {
	return churnSnapshot{
		delta:     reg.Counter("resyncs_delta").Load(),
		full:      reg.Counter("resyncs_full").Load(),
		ops:       reg.Counter("resync_ops").Load(),
		bytes:     reg.Counter("resync_bytes").Load(),
		coalesced: reg.Counter("resyncs_coalesced").Load(),
		retries:   reg.Counter("resync_retries").Load(),
		errors:    reg.Counter("resync_errors").Load(),
	}
}

// churnAgentName names fleet member i; fault-plan Links entries matching
// these names force flaps.
func churnAgentName(i int) string { return fmt.Sprintf("host%04d", i) }

// churnPlan derives the per-round flap sets from the fault plan:
// a rotating window of FlapDown/FlapPeriod of the fleet, plus seeded
// independent flaps at LossRate, plus every agent the plan names.
func churnPlan(cfg ChurnConfig) [][]int {
	rng := rand.New(rand.NewSource(cfg.Seed))
	forced := map[int]bool{}
	if cfg.Faults != nil {
		for _, l := range cfg.Faults.Links {
			for i := 0; i < cfg.Agents; i++ {
				if churnAgentName(i) == l {
					forced[i] = true
				}
			}
		}
	}
	frac := 0.0
	loss := 0.0
	if cfg.Faults != nil {
		if cfg.Faults.FlapPeriod > 0 {
			frac = float64(cfg.Faults.FlapDown) / float64(cfg.Faults.FlapPeriod)
		}
		loss = cfg.Faults.LossRate
	}
	window := int(frac * float64(cfg.Agents))
	plan := make([][]int, cfg.Rounds)
	for r := range plan {
		set := map[int]bool{}
		for i := range forced {
			set[i] = true
		}
		start := 0
		if window > 0 {
			start = (r * window) % cfg.Agents
		}
		for k := 0; k < window; k++ {
			set[(start+k)%cfg.Agents] = true
		}
		for i := 0; i < cfg.Agents; i++ {
			if loss > 0 && rng.Float64() < loss {
				set[i] = true
			}
		}
		flapped := make([]int, 0, len(set))
		for i := range set {
			flapped = append(flapped, i)
		}
		sort.Ints(flapped)
		plan[r] = flapped
	}
	return plan
}

// churnDeltaOps builds round r's delta for agent i: DeltaOps uniquely
// patterned rules on the base table, valid as an extension of whatever the
// agent already holds.
func churnDeltaOps(cfg ChurnConfig, r, i int) []controller.PolicyOp {
	ops := make([]controller.PolicyOp, 0, cfg.DeltaOps)
	for k := 0; k < cfg.DeltaOps; k++ {
		raw, _ := json.Marshal(ctlproto.RuleParams{
			Dir: int(enclave.Egress), Table: "sched",
			Pattern: fmt.Sprintf("r%d.a%d.k%d.*", r, i, k), Func: "pias",
		})
		ops = append(ops, controller.PolicyOp{Op: ctlproto.OpEnclaveAddRule, Params: raw})
	}
	return ops
}

// RunChurn drives the churn benchmark: install a PolicyOps-sized base
// policy on every agent, then Rounds rounds of fault-plan flaps plus
// per-agent DeltaOps deltas, waiting for fleet convergence each round.
// It returns an error if the fleet fails to converge; Check judges the
// measured scaling.
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	cfg.withDefaults()
	t0 := time.Now()

	store := controller.NewPolicyStore()
	ctl, err := controller.ListenWithPolicies("127.0.0.1:0", store)
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	if cfg.ResyncLimit > 0 {
		ctl.SetResyncLimit(cfg.ResyncLimit)
	}
	ctl.SetResyncRetry(10*time.Millisecond, 8)
	if cfg.Metrics != nil {
		cfg.Metrics.Add(ctl.Metrics())
	}

	// The fleet: one enclave + persistent agent per host, brought up on
	// the trial worker pool (construction is index-keyed, so the fleet is
	// identical at any parallelism).
	encs := make([]*enclave.Enclave, cfg.Agents)
	agents := make([]*controller.PersistentAgent, cfg.Agents)
	forEachTrial(cfg.Agents, func(i int) {
		var tick atomic.Int64
		encs[i] = enclave.New(enclave.Config{
			Name: churnAgentName(i), Platform: "os",
			Clock: func() int64 { return tick.Add(1) },
		})
		// Each agent pushes its enclave metrics to the controller's fleet
		// rollups. With heartbeats off and no MetricsInterval, that is one
		// full push per session — churn load stays dominated by resyncs.
		aset := metrics.NewSet()
		aset.Add(encs[i].Metrics())
		agents[i] = controller.ServeEnclavePersistent(ctl.Addr(), churnAgentName(i), encs[i], controller.ReconnectConfig{
			BackoffMin:  5 * time.Millisecond,
			BackoffMax:  250 * time.Millisecond,
			Heartbeat:   -1, // churn is driven explicitly; pings just add load
			CallTimeout: 10 * time.Second,
			Metrics:     aset,
		})
	})
	defer func() {
		forEachTrial(cfg.Agents, func(i int) { agents[i].Close() })
	}()
	if err := ctl.WaitForAgents(cfg.Agents, cfg.Timeout); err != nil {
		return nil, err
	}

	// Base policy: pias + its table + padding rules, PolicyOps structural
	// ops total, identical for every agent.
	pias, err := funcs.Compile("pias")
	if err != nil {
		return nil, err
	}
	specRaw, err := json.Marshal(ctlproto.ToSpec(pias))
	if err != nil {
		return nil, err
	}
	tableRaw, _ := json.Marshal(ctlproto.TableParams{Dir: int(enclave.Egress), Table: "sched"})
	baseOps := []controller.PolicyOp{
		{Op: ctlproto.OpEnclaveInstall, Params: specRaw},
		{Op: ctlproto.OpEnclaveCreateTable, Params: tableRaw},
	}
	for len(baseOps) < cfg.PolicyOps {
		raw, _ := json.Marshal(ctlproto.RuleParams{
			Dir: int(enclave.Egress), Table: "sched",
			Pattern: fmt.Sprintf("b%d.*", len(baseOps)), Func: "pias",
		})
		baseOps = append(baseOps, controller.PolicyOp{Op: ctlproto.OpEnclaveAddRule, Params: raw})
	}
	for i := 0; i < cfg.Agents; i++ {
		ctl.PushDelta(churnAgentName(i), baseOps)
	}
	if err := churnWaitConverged(ctl, cfg, "base install"); err != nil {
		return nil, err
	}
	base := snapshotChurn(ctl.Metrics())
	tickFlight(cfg, 1)

	// The deterministic plan, digested so tests can pin it across
	// -parallel settings and reruns.
	plan := churnPlan(cfg)
	h := fnv.New64a()
	fmt.Fprintf(h, "agents=%d rounds=%d policy=%d delta=%d seed=%d\n",
		cfg.Agents, cfg.Rounds, cfg.PolicyOps, cfg.DeltaOps, cfg.Seed)
	flapsPerRound := make([]int, len(plan))
	for r, set := range plan {
		flapsPerRound[r] = len(set)
		fmt.Fprintf(h, "r%d:%v\n", r, set)
	}
	for r := 0; r < cfg.Rounds; r++ {
		for i := 0; i < cfg.Agents; i++ {
			for _, op := range churnDeltaOps(cfg, r, i) {
				h.Write(op.Params)
			}
		}
	}

	// Churn rounds: flap the round's set, push every agent its delta,
	// wait for the fleet to converge again.
	for r := 0; r < cfg.Rounds; r++ {
		for _, i := range plan[r] {
			agents[i].DropConnection()
		}
		for i := 0; i < cfg.Agents; i++ {
			ctl.PushDelta(churnAgentName(i), churnDeltaOps(cfg, r, i))
		}
		if err := churnWaitConverged(ctl, cfg, fmt.Sprintf("round %d", r)); err != nil {
			return nil, err
		}
		tickFlight(cfg, int64(r)+2)
	}

	final := snapshotChurn(ctl.Metrics())
	// The initial full pushes ride right behind each session's hello;
	// give stragglers until the phase timeout to land in the rollups.
	fleetDeadline := time.Now().Add(cfg.Timeout)
	for len(ctl.FleetAgents()) < cfg.Agents && time.Now().Before(fleetDeadline) {
		time.Sleep(2 * time.Millisecond)
	}
	converged := 0
	for i := 0; i < cfg.Agents; i++ {
		if st, ok := ctl.AgentStatus(churnAgentName(i)); ok &&
			st.ResyncErr == "" && st.Generation == st.IntendedGeneration {
			converged++
		}
	}
	// Freeze the fleet before the terminal flight sample so late
	// reconnects cannot move counters between the sample and the caller's
	// snapshot.
	forEachTrial(cfg.Agents, func(i int) { agents[i].Close() })
	ctl.Close()
	if cfg.Flight != nil {
		cfg.Flight.Finish((int64(cfg.Rounds) + 2) * cfg.Flight.Interval())
	}

	res := &ChurnResult{
		Config:        cfg,
		Digest:        h.Sum64(),
		FlapsPerRound: flapsPerRound,
		Converged:     converged,
		BaseFull:      base.full,
		BaseOps:       base.ops,
		ChurnDelta:    final.delta - base.delta,
		ChurnFull:     final.full - base.full,
		ChurnOps:      final.ops - base.ops,
		ChurnBytes:    final.bytes - base.bytes,
		Coalesced:     final.coalesced - base.coalesced,
		Retries:       final.retries - base.retries,
		Errors:        final.errors - base.errors,
		MetricsPushes: ctl.Metrics().Counter("metrics_pushes").Load(),
		FleetAgents:   len(ctl.FleetAgents()),
		Wall:          time.Since(t0),
	}
	if n := res.ChurnDelta + res.ChurnFull; n > 0 {
		res.OpsPerChurnResync = float64(res.ChurnOps) / float64(n)
	}
	return res, nil
}

// tickFlight samples the flight recorder at a synthetic round boundary.
func tickFlight(cfg ChurnConfig, boundary int64) {
	if cfg.Flight != nil {
		cfg.Flight.Tick(boundary * cfg.Flight.Interval())
	}
}

// churnWaitConverged polls until every agent reports the intended
// generation with no resync error.
func churnWaitConverged(ctl *controller.Controller, cfg ChurnConfig, phase string) error {
	deadline := time.Now().Add(cfg.Timeout)
	for {
		behind := 0
		for i := 0; i < cfg.Agents; i++ {
			st, ok := ctl.AgentStatus(churnAgentName(i))
			if !ok || st.ResyncErr != "" || st.Generation != st.IntendedGeneration {
				behind++
			}
		}
		if behind == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("churn: %s: %d/%d agents not converged after %v",
				phase, behind, cfg.Agents, cfg.Timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Deterministic returns the parallelism- and timing-independent summary:
// the plan digest, flap schedule and convergence verdict. Two runs with
// the same config must agree on this string at any -parallel setting.
func (r *ChurnResult) Deterministic() string {
	return fmt.Sprintf("agents=%d rounds=%d policy=%d delta=%d digest=%016x flaps=%v converged=%d",
		r.Config.Agents, r.Config.Rounds, r.Config.PolicyOps, r.Config.DeltaOps,
		r.Digest, r.FlapsPerRound, r.Converged)
}

// Check judges the run against the delta-distribution claim: the fleet
// converged, churn was served by deltas, and the average churn resync
// carried close to DeltaOps ops — well under the PolicyOps a full replay
// costs.
func (r *ChurnResult) Check() error {
	if r.Converged != r.Config.Agents {
		return fmt.Errorf("churn: %d/%d agents converged", r.Converged, r.Config.Agents)
	}
	if r.FleetAgents != r.Config.Agents {
		return fmt.Errorf("churn: %d/%d agents in the fleet metric rollups", r.FleetAgents, r.Config.Agents)
	}
	if r.MetricsPushes < int64(r.Config.Agents) {
		return fmt.Errorf("churn: %d metrics pushes from %d agents — the snapshot push path never ran",
			r.MetricsPushes, r.Config.Agents)
	}
	if r.Config.Rounds == 0 {
		return nil
	}
	if r.ChurnDelta == 0 {
		return fmt.Errorf("churn: no delta resyncs — the op-log path never ran")
	}
	if r.ChurnDelta < r.ChurnFull {
		return fmt.Errorf("churn: full resyncs (%d) outnumber delta resyncs (%d)",
			r.ChurnFull, r.ChurnDelta)
	}
	// The scaling claim. Coalescing can batch a couple of rounds into one
	// pass and the odd full replay is tolerated, so the bound is "half the
	// policy", not "exactly DeltaOps" — but with PolicyOps >> DeltaOps it
	// only holds when resyncs actually ship deltas.
	if r.Config.PolicyOps >= 4*r.Config.DeltaOps &&
		r.OpsPerChurnResync*2 >= float64(r.Config.PolicyOps) {
		return fmt.Errorf("churn: %.1f ops per churn resync vs %d-op policy — cost is scaling with policy size",
			r.OpsPerChurnResync, r.Config.PolicyOps)
	}
	return nil
}

// String renders the run summary.
func (r *ChurnResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Control-plane churn: %d agents, %d rounds, %d-op policy, %d-op deltas\n",
		r.Config.Agents, r.Config.Rounds, r.Config.PolicyOps, r.Config.DeltaOps)
	fmt.Fprintf(&b, "  plan: digest %016x, flaps/round %v, converged %d/%d\n",
		r.Digest, r.FlapsPerRound, r.Converged, r.Config.Agents)
	fmt.Fprintf(&b, "  base install: %d full resyncs, %d ops\n", r.BaseFull, r.BaseOps)
	fmt.Fprintf(&b, "  churn phase:  %d delta + %d full resyncs, %d ops (%.1f ops/resync), %d bytes\n",
		r.ChurnDelta, r.ChurnFull, r.ChurnOps, r.OpsPerChurnResync, r.ChurnBytes)
	fmt.Fprintf(&b, "  coalesced %d, retries %d, errors %d, wall %.1fs\n",
		r.Coalesced, r.Retries, r.Errors, r.Wall.Seconds())
	fmt.Fprintf(&b, "  fleet metrics: %d pushes, %d/%d agents in rollups\n",
		r.MetricsPushes, r.FleetAgents, r.Config.Agents)
	verdict := "ok: resync cost tracks delta size, not policy size"
	if err := r.Check(); err != nil {
		verdict = err.Error()
	}
	fmt.Fprintf(&b, "  %s\n", verdict)
	return b.String()
}
