package controller

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eden/internal/ctlproto"
	"eden/internal/enclave"
	"eden/internal/funcs"
	"eden/internal/packet"
)

// interceptAgent connects enc to the controller like ServeEnclave, but
// routes every incoming op through intercept first; a non-nil error fails
// the op without touching the enclave. Tests use it to inject agent-side
// faults (failed global pushes, stalled commits) into the resync path.
func interceptAgent(t *testing.T, addr string, enc *enclave.Enclave, intercept func(op string) error) *Agent {
	t.Helper()
	inner := enclaveHandler(enc)
	h := func(op string, params json.RawMessage, trace uint64) (any, error) {
		if err := intercept(op); err != nil {
			return nil, err
		}
		return inner(op, params, trace)
	}
	a, err := dialAndServe(addr, ctlproto.Hello{
		Kind: "enclave", Name: enc.Name(), Host: "h", Platform: enc.Platform(),
		Generation: enc.Generation(), Epoch: enc.BootID(),
	}, h, enc.Spans(), "agent."+enc.Name())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func policyOp(t *testing.T, op string, params any) PolicyOp {
	t.Helper()
	raw, err := json.Marshal(params)
	if err != nil {
		t.Fatal(err)
	}
	return PolicyOp{Op: op, Params: raw}
}

// waitConverged polls until the named agent reports the full intended
// policy with no outstanding resync error. Generation alone is not
// enough: it converges when the structural transaction commits, before
// the globals replay, and the resync counter survives reconnects — so a
// fresh enclave instance can briefly report the intended generation with
// its global arrays still unset. The globals cursor closes that window.
func waitConverged(t *testing.T, ctl *Controller, name string) AgentStatus {
	t.Helper()
	var st AgentStatus
	waitFor(t, name+" to converge", func() bool {
		s, ok := ctl.AgentStatus(name)
		if !ok {
			return false
		}
		st = s
		// >= on the cursor: pruning can drop a global the agent already
		// confirmed, leaving its cursor past the surviving high-water mark.
		return s.ResyncErr == "" && s.Resyncs > 0 &&
			s.Generation == s.IntendedGeneration &&
			s.GlobalsSeq >= s.IntendedGlobalsSeq
	})
	return st
}

// TestResyncRetriesPartialGlobals is the stuck-degraded regression: a
// globals push failing after the structural transaction committed must
// not strand the agent. The committed generation is recorded, the failed
// globals are retried with backoff, and the structural transaction is not
// re-run (exactly one tx_commit despite two injected failures).
func TestResyncRetriesPartialGlobals(t *testing.T) {
	ctl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	ctl.SetResyncRetry(5*time.Millisecond, 10)

	enc1 := newTestEnclave("e1")
	a1, err := ServeEnclave(ctl.Addr(), "h1", enc1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	re, _ := ctl.Enclave("e1")
	pushPIAS(t, re)
	a1.Close()
	waitFor(t, "old agent to unregister", func() bool {
		_, ok := ctl.Enclave("e1")
		return !ok
	})

	// A fresh enclave re-hellos at generation 0; its agent fails the first
	// two global-array pushes, so the first two resync passes die after
	// the structural commit.
	enc2 := newTestEnclave("e1")
	var failures atomic.Int32
	failures.Store(2)
	var txCommits atomic.Int32
	a2 := interceptAgent(t, ctl.Addr(), enc2, func(op string) error {
		switch op {
		case ctlproto.OpEnclaveUpdateArray:
			if failures.Load() > 0 {
				failures.Add(-1)
				return fmt.Errorf("injected globals failure")
			}
		case ctlproto.OpEnclaveTxCommit:
			txCommits.Add(1)
		}
		return nil
	})
	defer a2.Close()

	st := waitConverged(t, ctl, "e1")
	if got := piasPriority(enc2, 1); got != 7 {
		t.Fatalf("priority after recovered resync = %d, want 7", got)
	}
	if n := txCommits.Load(); n != 1 {
		t.Fatalf("structural tx committed %d times, want 1 (retries must resume from the recorded generation)", n)
	}
	if st.Generation != 1 {
		t.Fatalf("agent generation = %d, want 1", st.Generation)
	}
	if n := ctl.Metrics().Counter("resync_retries").Load(); n < 2 {
		t.Fatalf("resync_retries = %d, want >= 2", n)
	}
}

// TestCommitPrunesStaleGlobals is the wedged-resync regression: a global
// recorded for a function a later transaction uninstalled must be pruned
// at commit, or every future replay fails on it permanently.
func TestCommitPrunesStaleGlobals(t *testing.T) {
	ctl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	enc1 := newTestEnclave("e1")
	a1, err := ServeEnclave(ctl.Addr(), "h1", enc1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	re, _ := ctl.Enclave("e1")

	pias, err := funcs.Compile("pias")
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := funcs.Compile("fixed_priority")
	if err != nil {
		t.Fatal(err)
	}
	if err := re.TxBegin(); err != nil {
		t.Fatal(err)
	}
	if err := re.Install(pias); err != nil {
		t.Fatal(err)
	}
	if err := re.Install(fixed); err != nil {
		t.Fatal(err)
	}
	if err := re.CreateTable(enclave.Egress, "sched"); err != nil {
		t.Fatal(err)
	}
	if err := re.AddRule(enclave.Egress, "sched", "*", "pias"); err != nil {
		t.Fatal(err)
	}
	if _, err := re.TxCommit(); err != nil {
		t.Fatal(err)
	}
	if err := re.UpdateGlobalArray("pias", "priorities", []int64{10240, 1048576}); err != nil {
		t.Fatal(err)
	}
	if err := re.UpdateGlobalArray("pias", "priovals", []int64{7, 5}); err != nil {
		t.Fatal(err)
	}
	if err := re.UpdateGlobal("fixed_priority", "prio", 3); err != nil {
		t.Fatal(err)
	}

	// A second transaction removes fixed_priority; its recorded global
	// must leave the intended policy with it.
	if err := re.TxBegin(); err != nil {
		t.Fatal(err)
	}
	if err := re.Uninstall("fixed_priority"); err != nil {
		t.Fatal(err)
	}
	if _, err := re.TxCommit(); err != nil {
		t.Fatal(err)
	}
	pol, ok := ctl.Policies().Intended("e1")
	if !ok {
		t.Fatal("no intended policy")
	}
	for _, g := range pol.Globals {
		var p ctlproto.GlobalParams
		if err := json.Unmarshal(g.Params, &p); err != nil {
			t.Fatal(err)
		}
		if p.Func == "fixed_priority" {
			t.Fatalf("global for uninstalled func survived commit: %s %s", g.Op, g.Params)
		}
	}

	// A fresh enclave must be able to replay the pruned policy in full.
	a1.Close()
	waitFor(t, "old agent to unregister", func() bool {
		_, ok := ctl.Enclave("e1")
		return !ok
	})
	enc2 := newTestEnclave("e1")
	a2, err := ServeEnclave(ctl.Addr(), "h1", enc2)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	waitConverged(t, ctl, "e1")
	if got := piasPriority(enc2, 1); got != 7 {
		t.Fatalf("priority after replay = %d, want 7", got)
	}
}

// TestResyncGenerationCAS is the lost-update regression: a delta pushed
// while a replay is in flight must not be overwritten when the replay
// lands. The store update is conditional on the generation the replay
// observed; the racing delta ships in a follow-up pass.
func TestResyncGenerationCAS(t *testing.T) {
	ctl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	ctl.SetResyncRetry(5*time.Millisecond, 10)

	enc1 := newTestEnclave("e1")
	a1, err := ServeEnclave(ctl.Addr(), "h1", enc1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	re1, _ := ctl.Enclave("e1")
	pushPIAS(t, re1)
	a1.Close()
	waitFor(t, "old agent to unregister", func() bool {
		_, ok := ctl.Enclave("e1")
		return !ok
	})

	// The fresh enclave's replay stalls inside tx_commit; while it is
	// stalled, a delta lands in the store.
	enc2 := newTestEnclave("e1")
	var stallOnce sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	a2 := interceptAgent(t, ctl.Addr(), enc2, func(op string) error {
		if op == ctlproto.OpEnclaveTxCommit {
			stallOnce.Do(func() {
				close(entered)
				<-release
			})
		}
		return nil
	})
	defer a2.Close()

	<-entered
	fixed, err := funcs.Compile("fixed_priority")
	if err != nil {
		t.Fatal(err)
	}
	ctl.PushDelta("e1", []PolicyOp{
		policyOp(t, ctlproto.OpEnclaveInstall, ctlproto.ToSpec(fixed)),
		policyOp(t, ctlproto.OpEnclaveCreateTable, ctlproto.TableParams{Dir: int(enclave.Egress), Table: "qos"}),
		policyOp(t, ctlproto.OpEnclaveAddRule, ctlproto.RuleParams{Dir: int(enclave.Egress), Table: "qos", Pattern: "*", Func: "fixed_priority"}),
	})
	close(release)

	waitConverged(t, ctl, "e1")
	re2, ok := ctl.Enclave("e1")
	if !ok {
		t.Fatal("agent not registered")
	}
	if err := re2.UpdateGlobal("fixed_priority", "prio", 3); err != nil {
		t.Fatalf("racing delta was lost: %v", err)
	}
	if got := piasPriority(enc2, 1); got != 3 {
		t.Fatalf("priority after delta = %d, want 3 (qos table from the racing delta)", got)
	}
}

// TestDeltaResyncUsesOpLog checks the tentpole path: an agent behind by a
// few pushed deltas catches up from the op-log — counted as delta, not
// full, resyncs — whether the push finds it connected or it re-hellos
// later over the same enclave instance.
func TestDeltaResyncUsesOpLog(t *testing.T) {
	ctl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	enc := newTestEnclave("e1")
	agent := ServeEnclavePersistent(ctl.Addr(), "h1", enc, ReconnectConfig{
		BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		Heartbeat: 10 * time.Millisecond, CallTimeout: 2 * time.Second,
	})
	defer agent.Close()
	if err := ctl.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	re, _ := ctl.Enclave("e1")
	pushPIAS(t, re)

	// Delta 1: pushed while the agent is connected (live fan-out).
	gen := ctl.PushDelta("e1", []PolicyOp{
		policyOp(t, ctlproto.OpEnclaveAddRule, ctlproto.RuleParams{Dir: int(enclave.Egress), Table: "sched", Pattern: "aux.*", Func: "pias"}),
	})
	waitFor(t, "live delta push", func() bool {
		s, ok := ctl.AgentStatus("e1")
		return ok && s.ResyncErr == "" && s.Generation == gen
	})

	// Delta 2: pushed while the agent is away; it catches up on re-hello.
	agent.DropConnection()
	waitFor(t, "agent to disconnect", func() bool { return !agent.Connected() })
	ctl.PushDelta("e1", []PolicyOp{
		policyOp(t, ctlproto.OpEnclaveAddRule, ctlproto.RuleParams{Dir: int(enclave.Egress), Table: "sched", Pattern: "aux2.*", Func: "pias"}),
	})
	st := waitConverged(t, ctl, "e1")

	if st.DeltaResyncs < 2 {
		t.Fatalf("DeltaResyncs = %d, want >= 2", st.DeltaResyncs)
	}
	if st.FullResyncs != 0 {
		t.Fatalf("FullResyncs = %d, want 0 (op-log covered every gap)", st.FullResyncs)
	}
	if n := ctl.Metrics().Counter("resyncs_full").Load(); n != 0 {
		t.Fatalf("resyncs_full = %d, want 0", n)
	}
	// Each delta resync carried one op; a full replay of the PIAS policy
	// would carry at least three per pass.
	ops := ctl.Metrics().Counter("resync_ops").Load()
	if d := ctl.Metrics().Counter("resyncs_delta").Load(); d < 2 || ops > 2*d {
		t.Fatalf("resync_ops = %d over %d delta resyncs, want ~1 op each", ops, d)
	}
	if got := piasPriority(enc, 1); got != 7 {
		t.Fatalf("priority after deltas = %d, want 7", got)
	}
}

// TestFullReplayAfterLogTruncation: when pushed deltas outrun the bounded
// op-log, the agent falls back to a full replay — which must succeed even
// though its pipeline is non-empty (the replay swaps the pipeline, it
// does not extend it).
func TestFullReplayAfterLogTruncation(t *testing.T) {
	store := NewPolicyStore()
	store.SetOpLogCap(2)
	ctl, err := ListenWithPolicies("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	enc := newTestEnclave("e1")
	agent := ServeEnclavePersistent(ctl.Addr(), "h1", enc, ReconnectConfig{
		BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		Heartbeat: 10 * time.Millisecond, CallTimeout: 2 * time.Second,
	})
	if err := ctl.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	re, _ := ctl.Enclave("e1")
	pushPIAS(t, re)
	agent.Close()
	waitFor(t, "agent to unregister", func() bool {
		_, ok := ctl.Enclave("e1")
		return !ok
	})

	// Four deltas against a log bounded at two: the agent's gap falls off
	// the log.
	for i := 0; i < 4; i++ {
		ctl.PushDelta("e1", []PolicyOp{
			policyOp(t, ctlproto.OpEnclaveAddRule, ctlproto.RuleParams{
				Dir: int(enclave.Egress), Table: "sched",
				Pattern: fmt.Sprintf("p%d.*", i), Func: "pias",
			}),
		})
	}
	if n := store.logLen("e1"); n != 2 {
		t.Fatalf("op-log length = %d, want 2 (bounded)", n)
	}

	agent2 := ServeEnclavePersistent(ctl.Addr(), "h1", enc, ReconnectConfig{
		BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		Heartbeat: 10 * time.Millisecond, CallTimeout: 2 * time.Second,
	})
	defer agent2.Close()
	st := waitConverged(t, ctl, "e1")
	if st.FullResyncs < 1 {
		t.Fatalf("FullResyncs = %d, want >= 1 (log truncated past the agent)", st.FullResyncs)
	}
	if got := piasPriority(enc, 1); got != 7 {
		t.Fatalf("priority after full replay = %d, want 7", got)
	}
}

// TestStructuralCompaction pins the store-level history bound: add/remove
// and install/uninstall churn must not grow the structural history (and
// with it memory plus full-replay cost) with lifetime ops — once the
// history is well past the effective pipeline size it is compacted to an
// equivalent effective sequence.
func TestStructuralCompaction(t *testing.T) {
	ps := NewPolicyStore()
	install := PolicyOp{Op: ctlproto.OpEnclaveInstall, Params: json.RawMessage(`{"name":"f"}`)}
	uninstall := policyOp(t, ctlproto.OpEnclaveUninstall, ctlproto.GlobalParams{Func: "f"})
	create := policyOp(t, ctlproto.OpEnclaveCreateTable, ctlproto.TableParams{Dir: int(enclave.Egress), Table: "tbl"})
	keep := policyOp(t, ctlproto.OpEnclaveAddRule, ctlproto.RuleParams{Dir: int(enclave.Egress), Table: "tbl", Pattern: "keep", Func: "f"})
	ps.commit("a", 1, 7, []PolicyOp{install, create, keep})

	for i := 0; i < 150; i++ {
		p := fmt.Sprintf("p%d", i)
		ps.appendDelta("a", []PolicyOp{policyOp(t, ctlproto.OpEnclaveAddRule,
			ctlproto.RuleParams{Dir: int(enclave.Egress), Table: "tbl", Pattern: p, Func: "f"})})
		ps.appendDelta("a", []PolicyOp{policyOp(t, ctlproto.OpEnclaveRemoveRule,
			ctlproto.RuleParams{Dir: int(enclave.Egress), Table: "tbl", Pattern: p})})
	}
	pol, _ := ps.get("a")
	if len(pol.Structural) > structuralCompactMin+1 {
		t.Fatalf("structural history = %d ops after 300 delta ops, want <= %d (compacted)",
			len(pol.Structural), structuralCompactMin+1)
	}
	// The history must still produce the effective pipeline: f installed,
	// tbl created, exactly the one surviving rule.
	s := newEffState()
	for _, op := range pol.Structural {
		s.apply(op)
	}
	if s.opaque || !s.installed("f") || len(s.tables) != 1 ||
		len(s.rules) != 1 || s.rules[0].pattern != "keep" {
		t.Fatalf("compacted history does not reproduce the effective pipeline: %+v", s)
	}

	// Uninstall/delete churn compacts all the way to an empty policy.
	for i := 0; i < 40; i++ {
		ps.appendDelta("a", []PolicyOp{install})
		ps.appendDelta("a", []PolicyOp{uninstall})
	}
	ps.appendDelta("a", []PolicyOp{policyOp(t, ctlproto.OpEnclaveDeleteTable,
		ctlproto.TableParams{Dir: int(enclave.Egress), Table: "tbl"})})
	for i := 0; i < 40; i++ {
		ps.appendDelta("a", []PolicyOp{install})
		ps.appendDelta("a", []PolicyOp{uninstall})
	}
	pol, _ = ps.get("a")
	if len(pol.Structural) > structuralCompactMin+1 {
		t.Fatalf("structural history = %d ops after uninstalling everything, want <= %d",
			len(pol.Structural), structuralCompactMin+1)
	}
	empty := newEffState()
	for _, op := range pol.Structural {
		empty.apply(op)
	}
	if empty.size() != 0 {
		t.Fatalf("history after uninstalling everything still produces %d pipeline pieces, want 0", empty.size())
	}
	if pol.Generation == 0 {
		t.Fatal("generation lost by compaction")
	}

	// An op the compactor cannot interpret disables compaction for the
	// record instead of corrupting it.
	before := len(pol.Structural)
	ps.appendDelta("a", []PolicyOp{{Op: "custom.op", Params: json.RawMessage(`{}`)}})
	for i := 0; i < 100; i++ {
		ps.appendDelta("a", []PolicyOp{install})
		ps.appendDelta("a", []PolicyOp{uninstall})
	}
	pol, _ = ps.get("a")
	if n := len(pol.Structural); n != before+201 {
		t.Fatalf("opaque history = %d ops, want %d (append-only once uninterpretable)", n, before+201)
	}
}

// TestCompactionEndToEnd drives add/remove churn through a live agent,
// then checks both that the intended policy stayed bounded and that a
// fresh enclave can replay the compacted form in full — rules, function
// and globals all land.
func TestCompactionEndToEnd(t *testing.T) {
	ctl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	enc := newTestEnclave("e1")
	agent := ServeEnclavePersistent(ctl.Addr(), "h1", enc, ReconnectConfig{
		BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		Heartbeat: 10 * time.Millisecond, CallTimeout: 2 * time.Second,
	})
	if err := ctl.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	re, _ := ctl.Enclave("e1")
	pushPIAS(t, re)

	for i := 0; i < 80; i++ {
		p := fmt.Sprintf("p%d.*", i)
		ctl.PushDelta("e1", []PolicyOp{policyOp(t, ctlproto.OpEnclaveAddRule,
			ctlproto.RuleParams{Dir: int(enclave.Egress), Table: "sched", Pattern: p, Func: "pias"})})
		ctl.PushDelta("e1", []PolicyOp{policyOp(t, ctlproto.OpEnclaveRemoveRule,
			ctlproto.RuleParams{Dir: int(enclave.Egress), Table: "sched", Pattern: p})})
	}
	waitConverged(t, ctl, "e1")
	pol, ok := ctl.Policies().Intended("e1")
	if !ok {
		t.Fatal("no intended policy")
	}
	if len(pol.Structural) > structuralCompactMin+1 {
		t.Fatalf("structural history = %d ops after 160 delta ops, want <= %d",
			len(pol.Structural), structuralCompactMin+1)
	}
	if tab, ok := enc.Table(enclave.Egress, "sched"); !ok || len(tab.Rules()) != 1 {
		t.Fatalf("live agent table after churn = %+v, want the single base rule", tab)
	}

	agent.Close()
	waitFor(t, "agent to unregister", func() bool {
		_, ok := ctl.Enclave("e1")
		return !ok
	})
	enc2 := newTestEnclave("e1")
	a2, err := ServeEnclave(ctl.Addr(), "h1", enc2)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	waitConverged(t, ctl, "e1")
	if got := piasPriority(enc2, 1); got != 7 {
		t.Fatalf("priority after compacted replay = %d, want 7", got)
	}
	if tab, ok := enc2.Table(enclave.Egress, "sched"); !ok || len(tab.Rules()) != 1 {
		t.Fatalf("replayed table = %+v, want the single base rule", tab)
	}
}

// TestGlobalsDeltaReplay pins the globals cursor: a rule-only delta
// resync must not re-push globals the agent already holds (churn-phase
// resync cost has to track the delta, not the recorded-globals set),
// while a full replay onto a fresh enclave instance re-pushes them all —
// and replayed globals count into resync_ops.
func TestGlobalsDeltaReplay(t *testing.T) {
	ctl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	enc := newTestEnclave("e1")
	var arrayPushes atomic.Int32
	count := func(op string) error {
		if op == ctlproto.OpEnclaveUpdateArray {
			arrayPushes.Add(1)
		}
		return nil
	}
	a1 := interceptAgent(t, ctl.Addr(), enc, count)
	if err := ctl.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	re, _ := ctl.Enclave("e1")
	pushPIAS(t, re)
	if n := arrayPushes.Load(); n != 2 {
		t.Fatalf("live global pushes = %d, want 2", n)
	}

	// The agent drops, a rule-only delta lands, the same enclave instance
	// re-hellos: the delta resync must ship the rule and zero globals.
	a1.Close()
	waitFor(t, "agent to unregister", func() bool {
		_, ok := ctl.Enclave("e1")
		return !ok
	})
	ctl.PushDelta("e1", []PolicyOp{policyOp(t, ctlproto.OpEnclaveAddRule,
		ctlproto.RuleParams{Dir: int(enclave.Egress), Table: "sched", Pattern: "aux.*", Func: "pias"})})
	a2 := interceptAgent(t, ctl.Addr(), enc, count)
	st := waitConverged(t, ctl, "e1")
	if st.DeltaResyncs < 1 {
		t.Fatalf("DeltaResyncs = %d, want >= 1", st.DeltaResyncs)
	}
	if n := arrayPushes.Load(); n != 2 {
		t.Fatalf("array pushes after rule-only delta resync = %d, want 2 (globals must not be re-replayed)", n)
	}
	a2.Close()
	waitFor(t, "agent to unregister", func() bool {
		_, ok := ctl.Enclave("e1")
		return !ok
	})

	// A fresh enclave instance (new epoch) lost everything: the full
	// replay re-pushes both globals, and they count as resync ops.
	opsBefore := ctl.Metrics().Counter("resync_ops").Load()
	enc2 := newTestEnclave("e1")
	var arrayPushes2 atomic.Int32
	a3 := interceptAgent(t, ctl.Addr(), enc2, func(op string) error {
		if op == ctlproto.OpEnclaveUpdateArray {
			arrayPushes2.Add(1)
		}
		return nil
	})
	defer a3.Close()
	waitConverged(t, ctl, "e1")
	if n := arrayPushes2.Load(); n != 2 {
		t.Fatalf("array pushes after full replay = %d, want 2", n)
	}
	if got := piasPriority(enc2, 1); got != 7 {
		t.Fatalf("priority after full replay = %d, want 7", got)
	}
	if d := ctl.Metrics().Counter("resync_ops").Load() - opsBefore; d < 6 {
		t.Fatalf("resync_ops grew by %d over the full replay, want >= 6 (4 structural + 2 globals)", d)
	}
}

// TestTxResetSwapsPipeline: a transaction staged after Reset publishes a
// pipeline built from empty, atomically replacing whatever was installed.
func TestTxResetSwapsPipeline(t *testing.T) {
	enc := newTestEnclave("e1")
	pias, err := funcs.Compile("pias")
	if err != nil {
		t.Fatal(err)
	}
	tx := enc.Begin()
	tx.InstallFunc(pias)
	tx.CreateTable(enclave.Egress, "sched")
	tx.AddRule(enclave.Egress, "sched", enclave.Rule{Pattern: "*", Func: "pias"})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Re-staging the same policy without Reset trips duplicates...
	tx = enc.Begin()
	tx.InstallFunc(pias)
	tx.CreateTable(enclave.Egress, "sched")
	if _, err := tx.Commit(); err == nil {
		t.Fatal("re-staging onto a non-empty pipeline should fail")
	}

	// ...and with Reset it swaps cleanly.
	tx = enc.Begin()
	tx.Reset()
	tx.InstallFunc(pias)
	tx.CreateTable(enclave.Egress, "sched")
	tx.AddRule(enclave.Egress, "sched", enclave.Rule{Pattern: "*", Func: "pias"})
	if _, err := tx.Commit(); err != nil {
		t.Fatalf("reset replay failed: %v", err)
	}
	if err := enc.UpdateGlobalArray("pias", "priorities", []int64{10240, 1048576}); err != nil {
		t.Fatal(err)
	}
	if err := enc.UpdateGlobalArray("pias", "priovals", []int64{7, 5}); err != nil {
		t.Fatal(err)
	}
	if got := piasPriority(enc, 1); got != 7 {
		t.Fatalf("priority after reset replay = %d, want 7", got)
	}
	p := packet.New(1, 2, 3, 4, 1000)
	p.Meta.Class = "a.b.c"
	p.Meta.MsgID = 2
	enc.Process(enclave.Egress, p, 0)
}

// TestPolicyStoreDeltaEdges pins the op-log bookkeeping: epoch and
// coverage checks on deltaSince, and the rebase completeResync performs
// when a concurrent delta won the CAS.
func TestPolicyStoreDeltaEdges(t *testing.T) {
	ps := NewPolicyStore()
	ps.SetOpLogCap(3)
	op := PolicyOp{Op: "x", Params: json.RawMessage(`{}`)}
	ps.commit("a", 1, 7, []PolicyOp{op})
	for i := 0; i < 4; i++ {
		ps.appendDelta("a", []PolicyOp{op})
	}
	if n := ps.logLen("a"); n != 3 {
		t.Fatalf("logLen = %d, want 3", n)
	}
	if _, ok := ps.deltaSince("a", 4, 5, 7); !ok {
		t.Fatal("delta for covered gap should be available")
	}
	if _, ok := ps.deltaSince("a", 1, 5, 7); ok {
		t.Fatal("delta across truncated log should not be available")
	}
	if _, ok := ps.deltaSince("a", 4, 5, 8); ok {
		t.Fatal("delta across epochs should not be available")
	}
	if _, ok := ps.deltaSince("a", 5, 5, 7); ok {
		t.Fatal("delta for an up-to-date agent should not be available")
	}
	if _, ok := ps.deltaSince("a", 3, 6, 7); ok {
		t.Fatal("delta bounded past the store generation should not be available")
	}

	// CAS + rebase: a replay computed at gen 5 commits at agent gen 9
	// while a delta moved the store to 6. The store rebases onto the
	// agent's numbering and serves the racing delta as a follow-up.
	ps2 := NewPolicyStore()
	ps2.commit("b", 1, 7, []PolicyOp{op})
	if !ps2.completeResync("b", 1, 1, 9) {
		t.Fatal("uncontended completeResync should succeed")
	}
	ps2.appendDelta("b", []PolicyOp{op}) // gen 2
	if ps2.completeResync("b", 1, 9, 9) {
		t.Fatal("contended completeResync should fail")
	}
	pol, _ := ps2.get("b")
	if pol.Generation != 10 {
		t.Fatalf("rebased generation = %d, want 10", pol.Generation)
	}
	ops, ok := ps2.deltaSince("b", 9, 10, 9)
	if !ok || len(ops) != 1 {
		t.Fatalf("rebased delta = %v ok=%v, want the one racing op", ops, ok)
	}
}

// TestDeltaBoundedAtSnapshot is the snapshot/delta race regression: a
// delta landing between a resync pass's policy snapshot (get) and its
// op-log read (deltaSince) must not leak into the pass. The delta is
// bounded at the snapshot generation, so the pass ships exactly the
// snapshot's ops; the completeResync CAS miss then rebases the racing
// suffix and the follow-up pass ships exactly the racing op — before the
// fix, the racing op shipped in BOTH passes (a silently duplicated
// AddRule, or a permanently failing duplicated Install).
func TestDeltaBoundedAtSnapshot(t *testing.T) {
	ps := NewPolicyStore()
	mk := func(tag string) PolicyOp {
		return PolicyOp{Op: "x", Params: json.RawMessage(`{"tag":"` + tag + `"}`)}
	}
	ps.commit("a", 1, 7, []PolicyOp{mk("base")})
	ps.appendDelta("a", []PolicyOp{mk("d2")}) // gen 2
	pol, _ := ps.get("a")                     // the pass snapshots at gen 2
	ps.appendDelta("a", []PolicyOp{mk("d3")}) // racing delta, gen 3

	ops, ok := ps.deltaSince("a", 1, pol.Generation, 7)
	if !ok || len(ops) != 1 || string(ops[0].Params) != `{"tag":"d2"}` {
		t.Fatalf("bounded delta = %v ok=%v, want exactly the snapshot op d2", ops, ok)
	}
	// The agent commits the bounded delta, reaching its generation 2; the
	// CAS fails against the racing gen 3 and rebases the suffix.
	if ps.completeResync("a", pol.Generation, 2, 7) {
		t.Fatal("contended completeResync should fail")
	}
	pol2, _ := ps.get("a")
	if pol2.Generation != 3 {
		t.Fatalf("rebased generation = %d, want 3", pol2.Generation)
	}
	ops, ok = ps.deltaSince("a", 2, pol2.Generation, 7)
	if !ok || len(ops) != 1 || string(ops[0].Params) != `{"tag":"d3"}` {
		t.Fatalf("follow-up delta = %v ok=%v, want exactly the racing op d3", ops, ok)
	}
}
