package experiments

import (
	"strings"
	"testing"

	"eden/internal/netsim"
)

// The integration tests assert the *shape* of each figure — who wins and
// by roughly what factor — on reduced run counts and durations so the
// suite stays fast. The full-size configurations are exercised by the
// benchmarks and cmd/edenbench.

func quickFig9() Fig9Config {
	cfg := DefaultFig9Config()
	cfg.Runs = 2
	cfg.Duration = 120 * netsim.Millisecond
	return cfg
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res := RunFig9(quickFig9())

	for _, mode := range []Mode{ModeNative, ModeEden} {
		base := res.Small[SchemeBaseline][mode]
		pias := res.Small[SchemePIAS][mode]
		sff := res.Small[SchemeSFF][mode]
		if base.Flows == 0 || pias.Flows == 0 || sff.Flows == 0 {
			t.Fatalf("%v: missing small flows: %+v %+v %+v", mode, base, pias, sff)
		}
		// Prioritization significantly reduces FCT (the paper reports
		// 25-40%); require a clear win.
		if pias.AvgUsec >= base.AvgUsec*0.9 {
			t.Errorf("%v: PIAS small avg %.0fus not well below baseline %.0fus",
				mode, pias.AvgUsec, base.AvgUsec)
		}
		if sff.AvgUsec >= base.AvgUsec*0.9 {
			t.Errorf("%v: SFF small avg %.0fus not below baseline %.0fus",
				mode, sff.AvgUsec, base.AvgUsec)
		}
		// Tail improves too.
		if pias.P95Usec >= base.P95Usec {
			t.Errorf("%v: PIAS small p95 %.0fus not below baseline %.0fus",
				mode, pias.P95Usec, base.P95Usec)
		}
		// Intermediate flows benefit as well ("similar trends").
		basei := res.Inter[SchemeBaseline][mode]
		piasi := res.Inter[SchemePIAS][mode]
		if piasi.AvgUsec >= basei.AvgUsec {
			t.Errorf("%v: PIAS intermediate avg %.0fus not below baseline %.0fus",
				mode, piasi.AvgUsec, basei.AvgUsec)
		}
	}

	// Native and Eden agree (the paper: "differences are not
	// statistically significant"); allow generous simulation noise.
	for _, scheme := range []Scheme{SchemePIAS, SchemeSFF} {
		n := res.Small[scheme][ModeNative].AvgUsec
		e := res.Small[scheme][ModeEden].AvgUsec
		if ratio := e / n; ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%v: native %.0fus vs Eden %.0fus diverge", scheme, n, e)
		}
	}

	out := res.String()
	for _, want := range []string{"baseline", "PIAS", "SFF", "small flows", "intermediate flows"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	cfg := DefaultFig10Config()
	cfg.Runs = 2
	cfg.Duration = 150 * netsim.Millisecond
	res := RunFig10(cfg)

	for _, mode := range []Mode{ModeNative, ModeEden} {
		ecmp := res.Cells[LBECMP][mode].Mbps
		wcmp := res.Cells[LBWCMP][mode].Mbps
		// ECMP is dominated by the slow path: "throughput peaks at just
		// over 2Gbps".
		if ecmp < 1200 || ecmp > 3500 {
			t.Errorf("%v: ECMP throughput %.0f Mbps, want ~2000", mode, ecmp)
		}
		// WCMP lands well above ECMP ("3x better") but below the 11 Gbps
		// min-cut due to reordering.
		if wcmp < 2*ecmp {
			t.Errorf("%v: WCMP %.0f not >= 2x ECMP %.0f", mode, wcmp, ecmp)
		}
		if wcmp > 10500 {
			t.Errorf("%v: WCMP %.0f implausibly at min-cut despite reordering", mode, wcmp)
		}
	}
	// Native vs Eden negligible difference.
	for _, s := range []LBScheme{LBECMP, LBWCMP} {
		n := res.Cells[s][ModeNative].Mbps
		e := res.Cells[s][ModeEden].Mbps
		if ratio := e / n; ratio < 0.7 || ratio > 1.3 {
			t.Errorf("%v: native %.0f vs Eden %.0f Mbps diverge", s, n, e)
		}
	}
	if !strings.Contains(res.String(), "WCMP") {
		t.Error("rendering broken")
	}
}

func TestFigure11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	cfg := DefaultFig11Config()
	cfg.Runs = 2
	cfg.Duration = 400 * netsim.Millisecond
	res := RunFig11(cfg)

	iso := res.Reads[ScenarioIsolated].MBps
	isoW := res.Writes[ScenarioIsolated].MBps
	simR := res.Reads[ScenarioSimultaneous].MBps
	simW := res.Writes[ScenarioSimultaneous].MBps
	rcR := res.Reads[ScenarioRateControlled].MBps
	rcW := res.Writes[ScenarioRateControlled].MBps

	// Isolated: both saturate (~110-120 MB/s on a 1G link).
	if iso < 80 || isoW < 80 {
		t.Errorf("isolated throughput low: reads %.0f writes %.0f", iso, isoW)
	}
	if r := isoW / iso; r < 0.8 || r > 1.25 {
		t.Errorf("isolated reads %.0f vs writes %.0f not comparable", iso, isoW)
	}
	// Simultaneous: writes collapse (the paper reports a 72% drop).
	drop := 1 - simW/isoW
	if drop < 0.45 {
		t.Errorf("writes dropped only %.0f%% when competing (iso %.0f, sim %.0f)",
			drop*100, isoW, simW)
	}
	if simR < simW {
		t.Errorf("reads %.0f below writes %.0f in simultaneous run", simR, simW)
	}
	// Rate control equalizes ("ensures equal throughput between the two
	// operations").
	if r := rcW / rcR; r < 0.75 || r > 1.33 {
		t.Errorf("rate control did not equalize: reads %.0f writes %.0f", rcR, rcW)
	}
	// And recovers writes well above the starved level.
	if rcW < simW*1.3 {
		t.Errorf("rate control did not help writes: %.0f vs %.0f", rcW, simW)
	}
	if !strings.Contains(res.String(), "Rate-controlled") {
		t.Error("rendering broken")
	}
}

func TestFigure12Shape(t *testing.T) {
	cfg := DefaultFig12Config()
	cfg.Batches = 50
	cfg.BatchSize = 256
	res := RunFig12(cfg)
	for _, k := range []string{"API", "enclave", "interpreter"} {
		avg, p95 := res.AvgPct[k], res.P95Pct[k]
		if avg < 0 || p95 < 0 {
			t.Errorf("%s: negative overhead (%f, %f)", k, avg, p95)
		}
		// The absolute cap only holds uninstrumented: the race detector
		// slows the measured code 5-20x, and unevenly across components.
		if !raceEnabled && avg > 400 {
			t.Errorf("%s: overhead %.0f%% of line-rate budget is implausible", k, avg)
		}
	}
	if !strings.Contains(res.String(), "interpreter") {
		t.Error("rendering broken")
	}
}

func TestTable1AllDemosPass(t *testing.T) {
	out, err := RunTable1()
	if err != nil {
		t.Fatalf("demo failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "Port knocking") || !strings.Contains(out, "WCMP") {
		t.Errorf("table incomplete:\n%s", out)
	}
	// Rows requiring network support have no demo and are not claimed.
	for _, row := range Table1() {
		if !row.Eden && row.Demo != nil {
			t.Errorf("%s: demo provided for unsupported function", row.Function)
		}
		if row.Eden && row.Demo == nil {
			t.Errorf("%s: supported but undemonstrated", row.Function)
		}
	}
}
