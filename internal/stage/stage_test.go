package stage

import (
	"testing"

	"eden/internal/classify"
)

func memcachedWithFigure6Rules(t *testing.T) *Stage {
	t.Helper()
	s := Memcached()
	rules := []struct{ rs, text string }{
		{"r1", `<GET, - > -> [GET, {msg_id, msg_size}]`},
		{"r1", `<PUT, - > -> [PUT, {msg_id, msg_size}]`},
		{"r2", `<*, - > -> [DEFAULT, {msg_id, msg_size}]`},
		{"r3", `<GET, "a" > -> [GETA, {msg_id, msg_size}]`},
		{"r3", `<*, "a" > -> [A, {msg_id, msg_size}]`},
		{"r3", `<*, * > -> [OTHER, {msg_id, msg_size}]`},
	}
	for _, r := range rules {
		if _, err := s.ParseAndCreateRule(r.rs, r.text); err != nil {
			t.Fatalf("%s: %v", r.text, err)
		}
	}
	return s
}

func TestStageInfo(t *testing.T) {
	s := memcachedWithFigure6Rules(t)
	info := s.Info()
	if info.Name != "memcached" {
		t.Errorf("name = %q", info.Name)
	}
	if len(info.Classifiers) != 2 || info.Classifiers[0] != "msg_type" || info.Classifiers[1] != "key" {
		t.Errorf("classifiers = %v", info.Classifiers)
	}
	if len(info.MetaFields) != 4 {
		t.Errorf("meta fields = %v", info.MetaFields)
	}
	if len(info.RuleSets) != 3 {
		t.Errorf("rule sets = %v", info.RuleSets)
	}
}

func TestTagMultiClass(t *testing.T) {
	s := memcachedWithFigure6Rules(t)
	meta, ok := s.Tag(Message{
		FieldValues: []string{"PUT", "a"},
		Type:        2, Size: 4096, Key: 97,
	})
	if !ok {
		t.Fatal("classification failed")
	}
	// "a PUT request for key a belongs to memcached.r1.PUT,
	// memcached.r2.DEFAULT, and memcached.r3.A."
	want := []string{"memcached.r1.PUT", "memcached.r2.DEFAULT", "memcached.r3.A"}
	if meta.Class != want[0] {
		t.Errorf("primary class = %q", meta.Class)
	}
	if len(meta.Classes) != 3 {
		t.Fatalf("classes = %v", meta.Classes)
	}
	for i, w := range want {
		if meta.Classes[i] != w {
			t.Errorf("class %d = %q, want %q", i, meta.Classes[i], w)
		}
	}
	if meta.MsgID == 0 {
		t.Error("no message id")
	}
	if meta.MsgSize != 4096 {
		t.Errorf("msg size = %d", meta.MsgSize)
	}
	// msg_type requested by r1 rules? They ask only msg_id+msg_size;
	// so MsgType stays zero.
	if meta.MsgType != 0 {
		t.Errorf("msg type attached though not requested: %d", meta.MsgType)
	}
}

func TestTagRequestedMetadataOnly(t *testing.T) {
	s := Storage()
	if _, err := s.ParseAndCreateRule("rs", `<READ, -> -> [READ, {msg_id, msg_type, msg_size, tenant}]`); err != nil {
		t.Fatal(err)
	}
	meta, ok := s.Tag(Message{FieldValues: []string{"READ", "0"}, Type: 1, Size: 65536, Tenant: 3})
	if !ok {
		t.Fatal("not classified")
	}
	if meta.MsgType != 1 || meta.MsgSize != 65536 || meta.Tenant != 3 {
		t.Errorf("meta = %+v", meta)
	}
}

func TestTagUnclassified(t *testing.T) {
	s := Memcached() // no rules installed
	meta, ok := s.Tag(Message{FieldValues: []string{"GET", "x"}})
	if ok {
		t.Error("classified without rules")
	}
	if meta.MsgID == 0 {
		t.Error("unclassified messages still need ids")
	}
}

func TestMsgIDsUnique(t *testing.T) {
	s := Memcached()
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		meta, _ := s.Tag(Message{FieldValues: []string{"GET", "k"}})
		if seen[meta.MsgID] {
			t.Fatal("duplicate message id")
		}
		seen[meta.MsgID] = true
	}
}

func TestCreateRemoveRule(t *testing.T) {
	s := Memcached()
	id, err := s.CreateRule("r1", classify.Rule{
		Match: []classify.Pattern{{Value: "GET"}},
		Class: "GET",
		Meta:  []string{"msg_id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Tag(Message{FieldValues: []string{"GET", "x"}}); !ok {
		t.Fatal("rule not effective")
	}
	if err := s.RemoveRule("r1", id); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Tag(Message{FieldValues: []string{"GET", "x"}}); ok {
		t.Error("rule effective after removal")
	}
	if err := s.RemoveRule("r1", id); err == nil {
		t.Error("double remove succeeded")
	}
	if err := s.RemoveRule("nope", 1); err == nil {
		t.Error("remove from missing rule-set succeeded")
	}
	// Metadata validation: undeclared fields rejected.
	if _, err := s.CreateRule("r1", classify.Rule{Class: "X", Meta: []string{"bogus"}}); err == nil {
		t.Error("undeclared metadata accepted")
	}
}

func TestParseAndCreateRuleError(t *testing.T) {
	s := Memcached()
	if _, err := s.ParseAndCreateRule("r1", "not a rule"); err == nil {
		t.Error("bad rule text accepted")
	}
}

func TestBuiltinStages(t *testing.T) {
	for _, s := range []*Stage{Memcached(), HTTPLibrary(), Storage()} {
		info := s.Info()
		if info.Name == "" || len(info.Classifiers) == 0 || len(info.MetaFields) == 0 {
			t.Errorf("stage %+v incomplete", info)
		}
	}
}
