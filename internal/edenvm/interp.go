package edenvm

import (
	"fmt"
)

// Trap is the error produced when a program's execution is terminated by
// the runtime. As §3.4.3 requires, "a faulty action function will result in
// terminating the execution of that program, but will not affect the rest
// of the system": traps abort one invocation without touching enclave state.
type Trap struct {
	PC     int
	Op     Opcode
	Reason string
}

// Error implements the error interface.
func (t *Trap) Error() string {
	return fmt.Sprintf("edenvm: trap at pc %d (%s): %s", t.PC, t.Op, t.Reason)
}

// Env carries the per-invocation state the enclave runtime prepares for a
// program: consistent copies (or views) of the packet, message and global
// state vectors, plus the array pool for table-like global state. The
// interpreter mutates the slices in place; the enclave decides, per its
// concurrency model, when those mutations become authoritative.
type Env struct {
	Packet []int64
	Msg    []int64
	Global []int64
	// Arrays is the array pool. A value in any state slot may be used as
	// an array handle; handle h refers to Arrays[h].
	Arrays [][]int64
	// Rand supplies pseudo-random values for OpRand/OpRandRange. If nil, a
	// VM-local xorshift generator is used.
	Rand func() uint64
	// Clock supplies OpClock values (nanoseconds). If nil, a monotonic
	// counter is used so simulations stay deterministic.
	Clock func() int64
}

// DefaultFuel is the instruction budget an enclave grants an invocation
// unless configured otherwise. The paper deliberately does not restrict the
// cycle budget of action functions (§6); this backstop exists only to turn
// accidental infinite loops into traps.
const DefaultFuel = 1 << 20

// VM executes verified programs. A VM is not safe for concurrent use; the
// enclave keeps one per worker. Reusing a VM across invocations avoids
// per-packet allocation — the operand stack is the "64 bytes of stack" the
// paper reports, grown once to the largest program's requirement.
type VM struct {
	stack  []int64
	calls  []int
	locals []int64
	// cf is the frame the closure-threading backend (RunCompiled) executes
	// in; kept here so both backends share the VM-per-worker reuse model.
	cf cframe
	// rngState backs the default RNG when Env.Rand is nil.
	rngState uint64
	// clockState backs the default clock when Env.Clock is nil.
	clockState int64
	// Fuel is the instruction budget applied to each Run. Zero or
	// negative means DefaultFuel.
	Fuel int
}

// NewVM returns a VM with the default fuel budget and a fixed RNG seed
// (deterministic until the caller supplies Env.Rand).
func NewVM() *VM {
	return &VM{rngState: 0x9e3779b97f4a7c15}
}

func (vm *VM) nextRand() uint64 {
	// xorshift64*; cheap and adequate for load-balancing decisions.
	x := vm.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	vm.rngState = x
	return x * 0x2545f4914f6cdd1d
}

// Seed reseeds the VM's built-in RNG (used only when Env.Rand is nil).
func (vm *VM) Seed(seed uint64) {
	if seed == 0 {
		seed = 1
	}
	vm.rngState = seed
}

// Run interprets the program against env. It returns the number of
// instructions executed, or a *Trap error if execution was terminated.
func (vm *VM) Run(p *Program, env *Env) (int, error) {
	// Overflow traps are bounded by the *program's own* verified limits,
	// never by the backing slices' capacity: VMs are pooled and reused, so
	// capacity is a high-water mark of whichever larger program ran before
	// — trapping against it would make an over-limit program's fate depend
	// on pool history instead of on its own declaration.
	maxStack := p.MaxStack
	maxCalls := p.MaxCallDepth
	if cap(vm.stack) < maxStack {
		vm.stack = make([]int64, 0, maxStack)
	}
	if cap(vm.calls) < maxCalls {
		vm.calls = make([]int, 0, maxCalls)
	}
	if len(vm.locals) < p.NumLocals {
		vm.locals = make([]int64, p.NumLocals)
	}
	// Zero locals so one invocation cannot observe another's temporaries.
	locals := vm.locals[:p.NumLocals]
	for i := range locals {
		locals[i] = 0
	}
	stack := vm.stack[:0]
	calls := vm.calls[:0]
	fuel := vm.Fuel
	if fuel <= 0 {
		fuel = DefaultFuel
	}

	code := p.Code
	pc := 0
	steps := 0

	trap := func(reason string) (int, error) {
		op := OpNop
		tpc := pc
		if tpc >= 0 && tpc < len(code) {
			op = code[tpc].Op
		}
		return steps, &Trap{PC: tpc, Op: op, Reason: reason}
	}

	for {
		if pc < 0 || pc >= len(code) {
			return trap("program counter out of range")
		}
		if steps >= fuel {
			return trap("fuel exhausted")
		}
		steps++
		in := code[pc]
		switch in.Op {
		case OpNop:
			// nothing

		case OpConst:
			if len(stack) >= maxStack {
				return trap("operand stack overflow")
			}
			stack = append(stack, in.A)

		case OpLoad:
			if len(stack) >= maxStack {
				return trap("operand stack overflow")
			}
			stack = append(stack, locals[in.A])

		case OpStore:
			if len(stack) == 0 {
				return trap("operand stack underflow")
			}
			locals[in.A] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]

		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
			OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpHash:
			if len(stack) < 2 {
				return trap("operand stack underflow")
			}
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			var v int64
			switch in.Op {
			case OpAdd:
				v = a + b
			case OpSub:
				v = a - b
			case OpMul:
				v = a * b
			case OpDiv:
				if b == 0 {
					return trap("division by zero")
				}
				v = a / b
			case OpMod:
				if b == 0 {
					return trap("modulo by zero")
				}
				v = a % b
			case OpAnd:
				v = a & b
			case OpOr:
				v = a | b
			case OpXor:
				v = a ^ b
			case OpShl:
				v = a << (uint64(b) & 63)
			case OpShr:
				v = a >> (uint64(b) & 63)
			case OpEq:
				v = b2i(a == b)
			case OpNe:
				v = b2i(a != b)
			case OpLt:
				v = b2i(a < b)
			case OpLe:
				v = b2i(a <= b)
			case OpGt:
				v = b2i(a > b)
			case OpGe:
				v = b2i(a >= b)
			case OpHash:
				v = mix64(a, b)
			}
			stack[len(stack)-1] = v

		case OpNeg:
			if len(stack) == 0 {
				return trap("operand stack underflow")
			}
			stack[len(stack)-1] = -stack[len(stack)-1]

		case OpNot:
			if len(stack) == 0 {
				return trap("operand stack underflow")
			}
			stack[len(stack)-1] = ^stack[len(stack)-1]

		case OpJmp:
			pc = int(in.A)
			continue

		case OpJz:
			if len(stack) == 0 {
				return trap("operand stack underflow")
			}
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == 0 {
				pc = int(in.A)
				continue
			}

		case OpJnz:
			if len(stack) == 0 {
				return trap("operand stack underflow")
			}
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v != 0 {
				pc = int(in.A)
				continue
			}

		case OpCall:
			if len(calls) >= maxCalls {
				return trap("call stack overflow")
			}
			calls = append(calls, pc+1)
			pc = int(in.A)
			continue

		case OpRet:
			if len(calls) == 0 {
				return trap("return with empty call stack")
			}
			pc = calls[len(calls)-1]
			calls = calls[:len(calls)-1]
			continue

		case OpHalt:
			vm.stack = stack[:0]
			vm.calls = calls[:0]
			return steps, nil

		case OpPop:
			if len(stack) == 0 {
				return trap("operand stack underflow")
			}
			stack = stack[:len(stack)-1]

		case OpDup:
			if len(stack) == 0 {
				return trap("operand stack underflow")
			}
			if len(stack) >= maxStack {
				return trap("operand stack overflow")
			}
			stack = append(stack, stack[len(stack)-1])

		case OpSwap:
			if len(stack) < 2 {
				return trap("operand stack underflow")
			}
			n := len(stack)
			stack[n-1], stack[n-2] = stack[n-2], stack[n-1]

		case OpLdPkt, OpLdMsg, OpLdGlb:
			var src []int64
			switch in.Op {
			case OpLdPkt:
				src = env.Packet
			case OpLdMsg:
				src = env.Msg
			default:
				src = env.Global
			}
			if int(in.A) >= len(src) {
				return trap("state slot out of range for this invocation")
			}
			if len(stack) >= maxStack {
				return trap("operand stack overflow")
			}
			stack = append(stack, src[in.A])

		case OpStPkt, OpStMsg, OpStGlb:
			var dst []int64
			switch in.Op {
			case OpStPkt:
				dst = env.Packet
			case OpStMsg:
				dst = env.Msg
			default:
				dst = env.Global
			}
			if int(in.A) >= len(dst) {
				return trap("state slot out of range for this invocation")
			}
			if len(stack) == 0 {
				return trap("operand stack underflow")
			}
			dst[in.A] = stack[len(stack)-1]
			stack = stack[:len(stack)-1]

		case OpALoad:
			if len(stack) < 2 {
				return trap("operand stack underflow")
			}
			idx := stack[len(stack)-1]
			h := stack[len(stack)-2]
			stack = stack[:len(stack)-1]
			arr, err := env.array(h)
			if err != "" {
				return trap(err)
			}
			if idx < 0 || idx >= int64(len(arr)) {
				return trap("array index out of range")
			}
			stack[len(stack)-1] = arr[idx]

		case OpAStore:
			if len(stack) < 3 {
				return trap("operand stack underflow")
			}
			v := stack[len(stack)-1]
			idx := stack[len(stack)-2]
			h := stack[len(stack)-3]
			stack = stack[:len(stack)-3]
			arr, err := env.array(h)
			if err != "" {
				return trap(err)
			}
			if idx < 0 || idx >= int64(len(arr)) {
				return trap("array index out of range")
			}
			arr[idx] = v

		case OpALen:
			if len(stack) == 0 {
				return trap("operand stack underflow")
			}
			arr, err := env.array(stack[len(stack)-1])
			if err != "" {
				return trap(err)
			}
			stack[len(stack)-1] = int64(len(arr))

		case OpRand:
			if len(stack) >= maxStack {
				return trap("operand stack overflow")
			}
			stack = append(stack, int64(vm.rand(env)>>1))

		case OpRandRange:
			if len(stack) == 0 {
				return trap("operand stack underflow")
			}
			bound := stack[len(stack)-1]
			if bound <= 0 {
				return trap("randrange bound must be positive")
			}
			stack[len(stack)-1] = int64(vm.rand(env) % uint64(bound))

		case OpClock:
			if len(stack) >= maxStack {
				return trap("operand stack overflow")
			}
			stack = append(stack, vm.clock(env))

		default:
			return trap("invalid opcode")
		}
		pc++
	}
}

func (env *Env) array(h int64) ([]int64, string) {
	if h < 0 || h >= int64(len(env.Arrays)) {
		return nil, "invalid array handle"
	}
	return env.Arrays[h], ""
}

func (vm *VM) rand(env *Env) uint64 {
	if env.Rand != nil {
		return env.Rand()
	}
	return vm.nextRand()
}

func (vm *VM) clock(env *Env) int64 {
	if env.Clock != nil {
		return env.Clock()
	}
	vm.clockState++
	return vm.clockState
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// mix64 is a 64-bit finalizer-style mixer (splitmix64 finalizer) over the
// xor of its inputs, used by OpHash for ECMP-style flow hashing.
func mix64(a, b int64) int64 {
	x := uint64(a) ^ (uint64(b) * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x >> 1) // non-negative
}
