package edenvm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Access describes what a program may do to a state vector. The compiler
// derives these flags from the programmer's access-control annotations
// (§3.4.4); the enclave uses them to pick the concurrency model and the
// verifier uses them to reject stores to read-only state.
type Access uint8

// Access levels for a state vector.
const (
	// AccessNone means the vector is not used at all.
	AccessNone Access = iota
	// AccessReadOnly permits loads only.
	AccessReadOnly
	// AccessReadWrite permits loads and stores.
	AccessReadWrite
)

// String returns a human-readable access level.
func (a Access) String() string {
	switch a {
	case AccessNone:
		return "none"
	case AccessReadOnly:
		return "readonly"
	case AccessReadWrite:
		return "readwrite"
	default:
		return fmt.Sprintf("access(%d)", uint8(a))
	}
}

// Concurrency is the enclave scheduling class for a program, derived from
// its state access flags exactly as §3.4.4 prescribes.
type Concurrency uint8

// Concurrency classes.
const (
	// ConcurrencyParallel: message and global state are read-only, so any
	// number of invocations may run in parallel (only packet state is
	// written).
	ConcurrencyParallel Concurrency = iota
	// ConcurrencyPerMessage: the program writes message state, so at most
	// one packet per message may be processed at a time.
	ConcurrencyPerMessage
	// ConcurrencyExclusive: the program writes global state, so only one
	// invocation may run at a time.
	ConcurrencyExclusive
)

// String returns a human-readable concurrency class.
func (c Concurrency) String() string {
	switch c {
	case ConcurrencyParallel:
		return "parallel"
	case ConcurrencyPerMessage:
		return "per-message"
	case ConcurrencyExclusive:
		return "exclusive"
	default:
		return fmt.Sprintf("concurrency(%d)", uint8(c))
	}
}

// StateSpec declares the shape of the state a program touches: how many
// field slots each vector has and the program's access level to each.
// Packet state is always read-write (the function may rewrite headers).
type StateSpec struct {
	PacketFields int
	MsgFields    int
	GlobalFields int
	MsgAccess    Access
	GlobalAccess Access
}

// Concurrency returns the scheduling class implied by the access flags.
func (s StateSpec) Concurrency() Concurrency {
	switch {
	case s.GlobalAccess == AccessReadWrite:
		return ConcurrencyExclusive
	case s.MsgAccess == AccessReadWrite:
		return ConcurrencyPerMessage
	default:
		return ConcurrencyParallel
	}
}

// Program is a verified-loadable unit of enclave computation: the compiled
// form of one action function. A Program is immutable once built; the same
// Program value may be shared by any number of enclaves and platforms.
type Program struct {
	// Name is the fully qualified function name, e.g. "pias" or "wcmp".
	Name string
	// Code is the decoded instruction stream. Instruction 0 is the entry
	// point.
	Code []Instr
	// NumLocals is the number of local variable slots the program uses.
	NumLocals int
	// MaxStack is the operand stack high-water mark computed by the
	// verifier (or declared by an assembler program and then checked).
	MaxStack int
	// MaxCallDepth bounds the call stack; 0 means "no calls".
	MaxCallDepth int
	// State declares the program's state shape and access levels.
	State StateSpec
	// FieldNames optionally maps state slots to source-level names for
	// disassembly and debugging. Keys look like "pkt.0", "msg.1", "glb.2".
	FieldNames map[string]string

	// verified memoizes a successful Verify so layered checks (load-time
	// plus enclave commit-time) pay the full pass once. Decode always
	// returns a fresh, unverified Program, so tampering with encoded bytes
	// can never inherit the mark. Verification serializes through the
	// call sites (compile, load, commit under the enclave lock), so a
	// plain bool suffices.
	verified bool
}

// Wire format constants.
const (
	progMagic   = 0x4544454e // "EDEN"
	progVersion = 1
)

// Errors returned by Decode.
var (
	ErrBadMagic   = errors.New("edenvm: bad program magic")
	ErrBadVersion = errors.New("edenvm: unsupported program version")
	ErrTruncated  = errors.New("edenvm: truncated program")
)

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// Encode serializes the program to the Eden wire format. This is the byte
// string a controller ships to enclaves over the enclave API; enclaves call
// Decode followed by Verify before installing it in a match-action table.
func (p *Program) Encode() []byte {
	b := make([]byte, 0, 16+len(p.Code)*3)
	b = binary.BigEndian.AppendUint32(b, progMagic)
	b = append(b, progVersion)
	b = appendUvarint(b, uint64(len(p.Name)))
	b = append(b, p.Name...)
	b = appendUvarint(b, uint64(p.NumLocals))
	b = appendUvarint(b, uint64(p.MaxStack))
	b = appendUvarint(b, uint64(p.MaxCallDepth))
	b = appendUvarint(b, uint64(p.State.PacketFields))
	b = appendUvarint(b, uint64(p.State.MsgFields))
	b = appendUvarint(b, uint64(p.State.GlobalFields))
	b = append(b, byte(p.State.MsgAccess), byte(p.State.GlobalAccess))
	b = appendUvarint(b, uint64(len(p.Code)))
	for _, in := range p.Code {
		b = append(b, byte(in.Op))
		if in.Op.HasOperand() {
			b = appendVarint(b, in.A)
		}
	}
	return b
}

type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) ReadByte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, ErrTruncated
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r)
	if err != nil {
		r.err = ErrTruncated
	}
	return v
}

func (r *byteReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r)
	if err != nil {
		r.err = ErrTruncated
	}
	return v
}

func (r *byteReader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.err = ErrTruncated
		return nil
	}
	s := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return s
}

// maxProgramLen bounds decoded program size; enclave programs are small by
// design (§6: "we expect small functions running in the enclave").
const maxProgramLen = 1 << 16

// Decode parses a wire-format program. The result is structurally valid but
// not yet verified; callers must run Verify before execution.
func Decode(b []byte) (*Program, error) {
	if len(b) < 5 {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint32(b) != progMagic {
		return nil, ErrBadMagic
	}
	if b[4] != progVersion {
		return nil, ErrBadVersion
	}
	r := &byteReader{b: b, off: 5}
	nameLen := r.uvarint()
	if nameLen > 1024 {
		return nil, fmt.Errorf("edenvm: program name too long (%d bytes)", nameLen)
	}
	name := string(r.bytes(nameLen))
	p := &Program{Name: name}
	p.NumLocals = int(r.uvarint())
	p.MaxStack = int(r.uvarint())
	p.MaxCallDepth = int(r.uvarint())
	p.State.PacketFields = int(r.uvarint())
	p.State.MsgFields = int(r.uvarint())
	p.State.GlobalFields = int(r.uvarint())
	acc := r.bytes(2)
	if r.err != nil {
		return nil, r.err
	}
	p.State.MsgAccess = Access(acc[0])
	p.State.GlobalAccess = Access(acc[1])
	if p.State.MsgAccess > AccessReadWrite || p.State.GlobalAccess > AccessReadWrite {
		return nil, fmt.Errorf("edenvm: invalid access flags %d/%d", acc[0], acc[1])
	}
	n := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if n > maxProgramLen {
		return nil, fmt.Errorf("edenvm: program too long (%d instructions, max %d)", n, maxProgramLen)
	}
	p.Code = make([]Instr, 0, n)
	for i := uint64(0); i < n; i++ {
		opb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		op := Opcode(opb)
		if !op.Valid() {
			return nil, fmt.Errorf("edenvm: invalid opcode %d at instruction %d", opb, i)
		}
		var a int64
		if op.HasOperand() {
			a = r.varint()
		}
		p.Code = append(p.Code, Instr{Op: op, A: a})
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("edenvm: %d trailing bytes after program", len(b)-r.off)
	}
	return p, nil
}

// Disassemble renders the program's instruction stream as assembler text,
// one instruction per line, prefixed with the instruction index.
func (p *Program) Disassemble() string {
	var out []byte
	for i, in := range p.Code {
		out = append(out, fmt.Sprintf("%4d: %s\n", i, in)...)
	}
	return string(out)
}
