package experiments

import (
	"strings"
	"testing"
	"time"

	"eden/internal/metrics"
	"eden/internal/telemetry"
)

// smallFlows keeps test runs fast: a 200 → 2000 ramp instead of 10k → 1M.
func smallFlows() FlowsConfig {
	cfg := DefaultFlowsConfig()
	cfg.StartFlows = 200
	cfg.PeakFlows = 2000
	cfg.Steps = 3
	cfg.HotFlows = 50
	// A generous flat-factor: at this tiny scale the per-step histograms
	// hold few samples and wall-clock jitter dominates, so only gross
	// regressions (lock contention, per-packet allocation) should fail.
	cfg.FlatFactor = 64
	return cfg
}

// TestFlowsRampReclaimsExactly is the end-to-end check of the tentpole
// claim at test scale: the ramp reaches the peak with zero capacity
// evictions and the drain reclaims exactly the cold tail.
func TestFlowsRampReclaimsExactly(t *testing.T) {
	res, err := RunFlows(smallFlows())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res)
	}
	// Every message id in this experiment is enclave-assigned, so the flow
	// cascade reclaims all per-function state exactly; the functions' own
	// sweeps (which catch stage-assigned ids only) must find no leftovers.
	if res.MsgReclaims != 0 {
		t.Fatalf("MsgReclaims = %d, want 0 — the flow cascade left orphaned state\n%s", res.MsgReclaims, res)
	}
	if res.Shards < 64 {
		t.Fatalf("Shards = %d, want the engine sharded\n%s", res.Shards, res)
	}
}

// TestFlowsDeterministic pins the structural half of the result: two runs
// of the same config agree on the ramp schedule and all reclamation
// accounting (latencies are timing and excluded).
func TestFlowsDeterministic(t *testing.T) {
	cfg := smallFlows()
	a, err := RunFlows(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFlows(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.Deterministic(), b.Deterministic(); got != want {
		t.Fatalf("runs diverged:\n got %s\nwant %s", got, want)
	}
}

// TestFlowsTargets pins the ramp schedule: log-spaced, strictly
// increasing, endpoints exact.
func TestFlowsTargets(t *testing.T) {
	got := flowsTargets(10_000, 1_000_000, 7)
	if len(got) != 7 || got[0] != 10_000 || got[6] != 1_000_000 {
		t.Fatalf("targets = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("targets not strictly increasing: %v", got)
		}
		ratio := float64(got[i]) / float64(got[i-1])
		if ratio < 1.5 || ratio > 3.0 {
			t.Fatalf("step %d ratio %.2f not log-spaced: %v", i, ratio, got)
		}
	}
	// Degenerate shapes collapse to the peak.
	if got := flowsTargets(100, 100, 5); len(got) != 1 || got[0] != 100 {
		t.Fatalf("flat ramp = %v, want [100]", got)
	}
}

// TestFlowsFlightRecorder wires the ramp into a flight recorder and
// checks the series passes the recorder's own validation — the same gate
// `edenbench -exp flows -record-check` applies.
func TestFlowsFlightRecorder(t *testing.T) {
	cfg := smallFlows()
	set := metrics.NewSet()
	cfg.Metrics = set
	cfg.Flight = telemetry.NewFlightRecorder(set, int64(time.Millisecond))
	res, err := RunFlows(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res)
	}
	if err := cfg.Flight.Check(); err != nil {
		t.Fatalf("flight check: %v", err)
	}
	sums := cfg.Flight.SumCounters()
	for _, reg := range set.Snapshot() {
		for name, v := range reg.Counters {
			if got := sums[reg.Name+"/"+name]; got != v {
				t.Fatalf("counter %s/%s: summed deltas %d != terminal %d", reg.Name, name, got, v)
			}
		}
	}
	if !strings.Contains(res.String(), "ok: p99 flat across the ramp") {
		t.Fatalf("result did not self-report ok:\n%s", res)
	}
}
