package udpnet

import (
	"net"
	"testing"
	"time"

	"eden/internal/compiler"
	"eden/internal/enclave"
	"eden/internal/metrics"
	"eden/internal/packet"
	"eden/internal/trace"
	"eden/internal/transport"
)

var (
	ipA = packet.MustParseIP("10.0.0.1")
	ipB = packet.MustParseIP("10.0.0.2")
)

// startPair launches two loopback nodes routed at each other.
func startPair(t *testing.T, aCfg, bCfg Config) (*Node, *Node) {
	t.Helper()
	aCfg.IP, bCfg.IP = ipA, ipB
	a, err := Start(aCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := Start(bCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.AddPeer(ipB, b.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(ipA, a.Addr().String()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func waitCounter(t *testing.T, c *metrics.Counter, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", what, c.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNodeRawLoopback exchanges a raw (non-TCP) packet between two OS
// processes' worth of nodes over real loopback UDP, metadata included.
func TestNodeRawLoopback(t *testing.T) {
	got := make(chan *packet.Packet, 16)
	bCfg := Config{OnRaw: func(pk *packet.Packet) {
		cp := *pk // the pooled packet dies with the callback; copy it
		cp.Payload = append([]byte(nil), pk.Payload...)
		select {
		case got <- &cp:
		default:
		}
	}}
	a, b := startPair(t, Config{}, bCfg)

	mk := func() *packet.Packet {
		pk := packet.NewUDP(ipA, ipB, 5000, 5001, 4)
		pk.Payload = []byte("ping")
		pk.Meta.Class = "app.raw"
		pk.Meta.MsgID = 7
		return pk
	}
	// UDP is lossy even on loopback in principle; re-inject until the
	// receiver sees one.
	deadline := time.Now().Add(5 * time.Second)
	var rcvd *packet.Packet
	for rcvd == nil {
		if time.Now().After(deadline) {
			t.Fatal("raw packet never arrived")
		}
		a.Inject(mk())
		select {
		case rcvd = <-got:
		case <-time.After(50 * time.Millisecond):
		}
	}
	if string(rcvd.Payload) != "ping" || rcvd.Meta.Class != "app.raw" || rcvd.Meta.MsgID != 7 {
		t.Fatalf("received %+v payload %q", rcvd.Meta, rcvd.Payload)
	}
	if rcvd.IP.Src != ipA || rcvd.UDPHdr.DstPort != 5001 {
		t.Fatalf("headers did not survive: %+v", rcvd)
	}
	if a.Metrics().Counter("tx_datagrams").Load() == 0 {
		t.Error("sender tx_datagrams is 0")
	}
	waitCounter(t, b.Metrics().Counter("rx_raw_delivered"), 1, "rx_raw_delivered")
}

// TestNodeTCPMessageTransfer runs the full transport stack — handshake,
// windowing, retransmission timers — over real sockets: a dials b,
// sends a multi-segment message, and b's OnMessage must fire with the
// metadata intact.
func TestNodeTCPMessageTransfer(t *testing.T) {
	done := make(chan packet.Metadata, 1)
	a, b := startPair(t, Config{}, Config{})
	b.Listen(80, func(c *transport.Conn) {
		c.OnMessage = func(meta packet.Metadata) {
			select {
			case done <- meta:
			default:
			}
		}
	})
	c := a.Dial(ipB, 80)
	if c == nil {
		t.Fatal("Dial returned nil")
	}
	const size = 100_000
	a.DoWait(func() {
		c.SendMessage(size, packet.Metadata{Class: "app.msg", MsgID: 42, MsgSize: size})
	})
	select {
	case meta := <-done:
		if meta.Class != "app.msg" || meta.MsgID != 42 {
			t.Fatalf("message metadata mismatch: %+v", meta)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("message never completed; a tx=%d b rx=%d",
			a.Metrics().Counter("tx_datagrams").Load(),
			b.Metrics().Counter("rx_datagrams").Load())
	}
	snap := b.TransportMetrics()
	if snap.Counters["segments_rcvd"] == 0 {
		t.Errorf("transport snapshot shows no segments: %+v", snap.Counters)
	}
}

// TestNodeEnclaveIngressDrop installs a firewall action function on the
// receiver's OS attach point and asserts the verdict is enforced on
// real traffic (and counted), exactly as in the simulator.
func TestNodeEnclaveIngressDrop(t *testing.T) {
	enc := enclave.New(enclave.Config{
		Name:     "b-os",
		Platform: "os",
		Clock:    func() int64 { return time.Now().UnixNano() },
	})
	f := compiler.MustCompile("dropper", "fun (p, m, g) ->\n if p.dst_port = 23 then p.drop <- 1")
	if err := enc.InstallFunc(f); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.CreateTable(enclave.Ingress, "fw"); err != nil {
		t.Fatal(err)
	}
	if err := enc.AddRule(enclave.Ingress, "fw", enclave.Rule{Pattern: "*", Func: "dropper"}); err != nil {
		t.Fatal(err)
	}

	got := make(chan uint16, 16)
	bCfg := Config{OS: enc, OnRaw: func(pk *packet.Packet) {
		select {
		case got <- pk.UDPHdr.DstPort:
		default:
		}
	}}
	a, b := startPair(t, Config{}, bCfg)

	deadline := time.Now().Add(5 * time.Second)
	var passed uint16
	for passed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("allowed packet never arrived")
		}
		a.Inject(packet.NewUDP(ipA, ipB, 5000, 23, 0)) // firewalled
		a.Inject(packet.NewUDP(ipA, ipB, 5000, 80, 0)) // allowed
		select {
		case passed = <-got:
		case <-time.After(50 * time.Millisecond):
		}
	}
	if passed != 80 {
		t.Fatalf("firewalled packet delivered (port %d)", passed)
	}
	waitCounter(t, b.Metrics().Counter("verdict_drops"), 1, "verdict_drops")
}

// TestNodeMalformedDatagrams blasts garbage at a node's socket: every
// datagram must be counted and discarded without panicking, and the
// pooled buffers must all come back (the reader legitimately holds one
// for its in-flight read).
func TestNodeMalformedDatagrams(t *testing.T) {
	n, err := Start(Config{IP: ipA})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	conn, err := net.Dial("udp", n.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	valid := AppendPacket(nil, packet.New(ipB, ipA, 1, 2, 0))
	payloads := [][]byte{
		[]byte("not a frame at all"),
		{frameMagic, 99, 0},
		valid[:len(valid)-3],
		append(append([]byte(nil), valid...), 0xFF),
	}
	for _, p := range payloads {
		if _, err := conn.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	waitCounter(t, n.Metrics().Counter("rx_decode_errors"), int64(len(payloads)), "rx_decode_errors")

	deadline := time.Now().Add(5 * time.Second)
	for {
		bufOut := n.Metrics().Gauge("pool_buf_outstanding").Load()
		pktOut := n.Metrics().Gauge("pool_pkt_outstanding").Load()
		if bufOut <= 1 && pktOut == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooled memory leaked: buf_outstanding=%d pkt_outstanding=%d", bufOut, pktOut)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	n, err := Start(Config{IP: ipA})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if n.Do(func() {}) {
		t.Error("Do succeeded after Close")
	}
	if n.DoWait(func() {}) {
		t.Error("DoWait succeeded after Close")
	}
	// Metrics sources must stay callable after Close (ops servers
	// outlive nodes during shutdown).
	_ = n.TransportMetrics()
}

// TestNodeTracing covers the hop-stamping hooks: a packet sampled on the
// sender's egress carries its trace id over the wire, the receiver
// records rx and deliver hops, and the merged timelines reconstruct the
// whole journey in order. A routeless packet records a drop.
func TestNodeTracing(t *testing.T) {
	aTr := trace.NewTracer(256, 64)
	aTr.SeedIDs(1 << 40)
	bTr := trace.NewTracer(256, 64)
	bTr.SeedIDs(2 << 40)
	got := make(chan struct{}, 16)
	a, _ := startPair(t,
		Config{Tracer: aTr},
		Config{Tracer: bTr, OnRaw: func(pk *packet.Packet) {
			select {
			case got <- struct{}{}:
			default:
			}
		}})

	deadline := time.Now().Add(5 * time.Second)
	delivered := false
	for !delivered {
		if time.Now().After(deadline) {
			t.Fatal("traced packet never arrived")
		}
		a.Inject(packet.NewUDP(ipA, ipB, 5000, 5001, 0))
		select {
		case <-got:
			delivered = true
		case <-time.After(50 * time.Millisecond):
		}
	}

	// Sender recorded tx, receiver recorded rx and deliver, all under
	// ids from the sender's seeded space.
	ids := aTr.Packets()
	if len(ids) == 0 {
		t.Fatal("sender tracer sampled nothing")
	}
	var id uint64
	deadline = time.Now().Add(5 * time.Second)
	for id == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no trace id seen by both nodes: a=%v b=%v", aTr.Packets(), bTr.Packets())
		}
		for _, cand := range bTr.Packets() {
			if len(aTr.PacketEvents(cand)) > 0 {
				id = cand
			}
		}
		time.Sleep(time.Millisecond)
	}
	if id>>40 != 1 {
		t.Errorf("trace id %#x not from the sender's seeded space", id)
	}

	merged := trace.MergeTimelines(aTr.PacketEvents(id), bTr.PacketEvents(id))
	var kinds []trace.Kind
	for _, ev := range merged {
		kinds = append(kinds, ev.Kind)
	}
	wantOrder := []trace.Kind{trace.KindTx, trace.KindRx, trace.KindDeliver}
	wi := 0
	for _, k := range kinds {
		if wi < len(wantOrder) && k == wantOrder[wi] {
			wi++
		}
	}
	if wi != len(wantOrder) {
		t.Errorf("merged timeline %v missing tx->rx->deliver order", kinds)
	}
	for _, ev := range merged {
		switch ev.Kind {
		case trace.KindTx:
			if ev.Node != "udpnet.10.0.0.1" {
				t.Errorf("tx event on node %q", ev.Node)
			}
		case trace.KindRx, trace.KindDeliver:
			if ev.Node != "udpnet.10.0.0.2" {
				t.Errorf("%v event on node %q", ev.Kind, ev.Node)
			}
		}
	}

	// A routeless destination records a drop hop with a detail.
	ipC := packet.MustParseIP("10.0.0.3")
	a.Inject(packet.NewUDP(ipA, ipC, 5000, 5001, 0))
	waitCounter(t, a.Metrics().Counter("tx_no_route"), 1, "tx_no_route")
	found := false
	deadline = time.Now().Add(5 * time.Second)
	for !found {
		if time.Now().After(deadline) {
			t.Fatal("no-route drop never recorded")
		}
		for _, ev := range aTr.Events() {
			if ev.Kind == trace.KindDrop && ev.Detail == "no-route" {
				found = true
			}
		}
		time.Sleep(time.Millisecond)
	}
}
