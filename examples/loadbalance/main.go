// Loadbalance reproduces case study 2 (§5.2) in miniature: two hosts
// connected by an asymmetric pair of paths (10 Gbps and 1 Gbps, the
// topology of the paper's Figure 1). The WCMP action function runs on the
// sender's NIC enclave and source-routes every packet by writing a VLAN
// label; with equal weights it behaves like per-packet ECMP and the slow
// path caps throughput, while 10:1 weights recover most of the capacity.
//
// Run with: go run ./examples/loadbalance
package main

import (
	"fmt"

	"eden/internal/funcs"
	"eden/internal/netsim"
	"eden/internal/packet"
	"eden/internal/transport"
)

func main() {
	fmt.Println("case study 2: weighted load balancing over asymmetric paths")
	ecmp := run([]int64{1, 1})
	wcmp := run([]int64{10, 1})
	fmt.Printf("\n%-6s %14s\n", "scheme", "throughput")
	fmt.Printf("%-6s %11.2f Gbps\n", "ECMP", ecmp)
	fmt.Printf("%-6s %11.2f Gbps\n", "WCMP", wcmp)
	fmt.Printf("\nWCMP/ECMP = %.1fx (min-cut is 11 Gbps; reordering costs the rest)\n", wcmp/ecmp)
}

func run(weights []int64) float64 {
	sim := netsim.New(3)
	const qcap = 256 * 1024

	h1 := netsim.NewHost(sim, "h1", packet.MustParseIP("10.0.1.1"), transport.Options{})
	h2 := netsim.NewHost(sim, "h2", packet.MustParseIP("10.0.1.2"), transport.Options{})

	swFast := netsim.NewSwitch(sim, "sw-fast")
	swSlow := netsim.NewSwitch(sim, "sw-slow")
	swFast.AddRoute(h2.IP(), swFast.AddPort(
		netsim.NewLink(sim, "fast->h2", 10*netsim.Gbps, 5*netsim.Microsecond, qcap, h2)))
	swSlow.AddRoute(h2.IP(), swSlow.AddPort(
		netsim.NewLink(sim, "slow->h2", 10*netsim.Gbps, 5*netsim.Microsecond, qcap, h2)))
	swFast.AddRoute(h1.IP(), swFast.AddPort(
		netsim.NewLink(sim, "fast->h1", 10*netsim.Gbps, 5*netsim.Microsecond, qcap, h1)))

	fastUp := netsim.NewLink(sim, "h1->fast", 10*netsim.Gbps, 5*netsim.Microsecond, qcap, swFast)
	slowUp := netsim.NewLink(sim, "h1->slow", netsim.Gbps, 5*netsim.Microsecond, qcap, swSlow)
	h1.SetUplink(fastUp)
	h1.SetLabelUplink(100, fastUp)
	h1.SetLabelUplink(200, slowUp)
	h2.SetUplink(netsim.NewLink(sim, "h2->fast", 10*netsim.Gbps, 5*netsim.Microsecond, qcap, swFast))

	// Per-packet weighted path selection on the NIC, exactly Figure 2's
	// WCMP function.
	nic := h1.NewNICEnclave()
	if err := funcs.InstallWCMP(nic, "lb", "*", []int64{100, 200}, weights); err != nil {
		panic(err)
	}

	var received int64
	h2.Stack.Listen(5001, func(c *transport.Conn) {
		c.OnData = func(_ packet.Metadata, n int64) { received += n }
	})
	for i := 0; i < 8; i++ {
		h1.Stack.Dial(h2.IP(), 5001).Send(1 << 30)
	}

	sim.Run(30 * netsim.Millisecond)
	start := received
	sim.Run(230 * netsim.Millisecond)
	return float64(received-start) * 8 / 0.2 / 1e9
}
