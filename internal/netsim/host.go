package netsim

import (
	"eden/internal/enclave"
	"eden/internal/packet"
	"eden/internal/trace"
	"eden/internal/transport"
)

// Host is an end host: a transport stack above, a NIC below, and up to two
// Eden enclave attach points in between, mirroring the paper's prototype
// platforms (§4.3) — one enclave in the OS network stack (the Windows
// filter driver in the paper) and one on the programmable NIC (the
// Netronome firmware). Packets leaving the transport stack traverse
// OS-enclave egress, then NIC-enclave egress, then the uplink; arriving
// packets traverse NIC-enclave ingress, then OS-enclave ingress, then the
// transport stack.
type Host struct {
	sim   *Sim
	name  string
	ip    uint32
	chain enclave.Chain

	// OS and NIC are the enclave attach points; either may be nil.
	OS  *enclave.Enclave
	NIC *enclave.Enclave

	uplink *Link
	// labelUplinks routes packets whose VLAN label matches to a specific
	// uplink — the dual-port NIC of the §5.2 testbed, where the source
	// route's first hop is the port choice.
	labelUplinks map[uint16]*Link
	// Stack is the host's transport layer.
	Stack *transport.Stack

	// OnRaw, when set, receives non-TCP packets (e.g. UDP app traffic).
	OnRaw func(pkt *packet.Packet)

	// StripPCP, when set, zeroes the 802.1q priority just before
	// transmission. This is the paper's "baseline (Eden)" configuration:
	// classification and action functions run, but the interpreter's
	// priority output is ignored before packets are transmitted (§5.1).
	StripPCP bool

	// Dropped counts packets dropped by enclave verdicts at this host.
	Dropped int64
}

// NewHost creates a host with a transport stack.
func NewHost(sim *Sim, name string, ip uint32, opts transport.Options) *Host {
	h := &Host{sim: sim, name: name, ip: ip}
	h.chain.Env = h
	h.Stack = transport.NewStack(h, opts)
	if sim.metrics != nil {
		sim.metrics.AddSource(h.Stack.MetricsSnapshot)
	}
	return h
}

// NodeName implements Node.
func (h *Host) NodeName() string { return h.name }

// IP implements transport.Env.
func (h *Host) IP() uint32 { return h.ip }

// Now implements transport.Env.
func (h *Host) Now() int64 { return h.sim.Now() }

// Schedule implements transport.Env.
func (h *Host) Schedule(at int64, fn func()) { h.sim.At(at, fn) }

// SetUplink attaches the host's NIC to a link toward the network.
func (h *Host) SetUplink(l *Link) { h.uplink = l }

// Uplink returns the host's default uplink.
func (h *Host) Uplink() *Link { return h.uplink }

// SetLabelUplink routes packets carrying the given VLAN label out a
// dedicated uplink (a second NIC port).
func (h *Host) SetLabelUplink(vid uint16, l *Link) {
	if h.labelUplinks == nil {
		h.labelUplinks = map[uint16]*Link{}
	}
	h.labelUplinks[vid] = l
}

// Sim returns the simulation the host belongs to.
func (h *Host) Sim() *Sim { return h.sim }

// Output implements transport.Env: the host egress path, traversing the
// enclave attach points via the shared enclave.Chain.
func (h *Host) Output(pkt *packet.Packet) {
	h.sim.tracer.Sample(pkt)
	h.chain.OS, h.chain.NIC = h.OS, h.NIC
	h.chain.Egress(pkt)
}

// Transmit implements enclave.ChainEnv: the packet passed every egress
// attach point and goes on the uplink.
func (h *Host) Transmit(pkt *packet.Packet) {
	if h.StripPCP && pkt.HasVLAN {
		pkt.VLAN.PCP = 0
	}
	link := h.uplink
	if pkt.HasVLAN && h.labelUplinks != nil {
		if l, ok := h.labelUplinks[pkt.VLAN.VID]; ok {
			link = l
		}
	}
	if link == nil {
		return
	}
	link.Send(pkt)
}

// Receive implements Node: the host ingress path.
func (h *Host) Receive(pkt *packet.Packet) {
	h.chain.OS, h.chain.NIC = h.OS, h.NIC
	h.chain.Ingress(pkt)
}

// Deliver implements enclave.ChainEnv: the packet passed every ingress
// attach point and reaches the host's upper layers.
func (h *Host) Deliver(pkt *packet.Packet) {
	h.sim.tracer.Record(pkt, h.sim.Now(), trace.KindDeliver, h.name, "")
	if pkt.IP.Proto == packet.ProtoTCP {
		h.Stack.Deliver(pkt)
		return
	}
	if h.OnRaw != nil {
		h.OnRaw(pkt)
	}
}

// DropVerdict implements enclave.ChainEnv: an enclave verdict discarded
// the packet at the named attach point.
func (h *Host) DropVerdict(point string, pkt *packet.Packet) {
	h.Dropped++
	h.sim.tracer.Record(pkt, h.sim.Now(), trace.KindDrop, h.name, point+" verdict")
}

// NewOSEnclave creates, attaches and returns an OS enclave for the host.
func (h *Host) NewOSEnclave() *enclave.Enclave {
	h.OS = enclave.New(enclave.Config{
		Name:     h.name + "-os",
		Platform: "os",
		Clock:    h.sim.Now,
		Rand:     func() uint64 { return h.sim.Rand().Uint64() },
		Tracer:   h.sim.tracer,
	})
	if h.sim.metrics != nil {
		h.sim.metrics.Add(h.OS.Metrics())
	}
	return h.OS
}

// NewNICEnclave creates, attaches and returns a NIC enclave for the host.
func (h *Host) NewNICEnclave() *enclave.Enclave {
	h.NIC = enclave.New(enclave.Config{
		Name:     h.name + "-nic",
		Platform: "nic",
		Clock:    h.sim.Now,
		Rand:     func() uint64 { return h.sim.Rand().Uint64() },
		Tracer:   h.sim.tracer,
	})
	if h.sim.metrics != nil {
		h.sim.metrics.Add(h.NIC.Metrics())
	}
	return h.NIC
}
