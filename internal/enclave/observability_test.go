package enclave

import (
	"sync"
	"testing"

	"eden/internal/compiler"
	"eden/internal/packet"
	"eden/internal/trace"
)

// mkFlowPkt builds a packet for a distinct flow (per src port).
func mkFlowPkt(srcPort uint16) *packet.Packet {
	return packet.New(0x0a000001, 0x0a000002, srcPort, 80, 100)
}

// Regression: overflowing the flow-message table must release the evicted
// message's per-function state (it used to linger until the function's own
// cap evicted it) and must never evict the entry just inserted.
func TestFlowEvictionReleasesStateAndKeepsNewFlow(t *testing.T) {
	var now int64
	e := New(Config{Name: "x", Clock: func() int64 { now++; return now }, MaxMessages: 2})
	e.FlowClassifier().Add(FlowRule{Class: "enclave.flows.all"})
	src := `
msg n : int
fun (p, m, g) ->
    m.n <- m.n + 1
`
	e.InstallFunc(compiler.MustCompile("f", src))
	e.CreateTable(Egress, "t")
	e.AddRule(Egress, "t", Rule{Pattern: "*", Func: "f"})

	ids := make([]uint64, 3)
	for i := range ids {
		p := mkFlowPkt(uint16(10000 + i))
		e.Process(Egress, p, 0)
		if p.Meta.MsgID == 0 {
			t.Fatal("no enclave-assigned message id")
		}
		ids[i] = p.Meta.MsgID
	}

	// One of the first two flows was evicted; the just-inserted third must
	// survive, and exactly the evicted flow's state must be gone.
	if _, ok := e.MsgState("f", ids[2]); !ok {
		t.Error("just-inserted flow was evicted")
	}
	live := 0
	for _, id := range ids {
		if _, ok := e.MsgState("f", id); ok {
			live++
		}
	}
	if live != 2 {
		t.Errorf("%d messages hold state, want 2 (evicted state not released)", live)
	}
	if got := e.Metrics().Snapshot().Counters["flow_evictions"]; got != 1 {
		t.Errorf("flow_evictions = %d, want 1", got)
	}
}

// Regression: a function steering to a nonexistent queue fails open and is
// counted as a misconfiguration, not as a queue drop.
func TestQueueMisconfigCountedSeparately(t *testing.T) {
	e := testEnclave(t)
	e.AddQueue(8, 100) // 1 B/s, 100 B cap: second packet overflows
	e.InstallFunc(compiler.MustCompile("bad", "fun (p,m,g) ->\n p.queue <- 9"))
	e.InstallFunc(compiler.MustCompile("good", "fun (p,m,g) ->\n p.queue <- 0"))
	e.CreateTable(Egress, "t")
	e.AddRule(Egress, "t", Rule{Pattern: "mis.*", Func: "bad"})
	e.AddRule(Egress, "t", Rule{Pattern: "ok.*", Func: "good"})

	mis := mkPkt(20)
	mis.Meta.Class = "mis.r.c"
	mis.Meta.MsgID = 1
	if v := e.Process(Egress, mis, 42); v.Drop || v.Queued || v.SendAt != 42 {
		t.Errorf("misconfig verdict = %+v, want fail-open", v)
	}

	for i := 0; i < 5; i++ {
		p := mkPkt(40)
		p.Meta.Class = "ok.r.c"
		p.Meta.MsgID = uint64(i + 2)
		e.Process(Egress, p, 0)
	}

	st := e.Stats()
	if st.QueueMisconfig != 1 {
		t.Errorf("QueueMisconfig = %d, want 1", st.QueueMisconfig)
	}
	if st.QueueDrops == 0 {
		t.Error("full-queue drops not counted")
	}
	if st.Drops != 0 {
		t.Errorf("Drops = %d, want 0 (misconfig fails open)", st.Drops)
	}
}

func TestPerFunctionAndPerQueueMetrics(t *testing.T) {
	e := testEnclave(t)
	e.AddQueue(8*1e9, 0)
	e.InstallFunc(compiler.MustCompile("steer", "fun (p,m,g) ->\n p.queue <- 0"))
	e.InstallFunc(compiler.MustCompile("trappy", "fun (p,m,g) ->\n p.path <- 1 / p.payload_len"))
	e.CreateTable(Egress, "t")
	e.AddRule(Egress, "t", Rule{Pattern: "q.*", Func: "steer"})
	e.AddRule(Egress, "t", Rule{Pattern: "trap.*", Func: "trappy"})

	for i := 0; i < 3; i++ {
		p := mkPkt(100)
		p.Meta.Class = "q.r.c"
		p.Meta.MsgID = uint64(i + 1)
		e.Process(Egress, p, 0)
	}
	tp := mkPkt(0) // payload_len 0 -> division trap
	tp.Meta.Class = "trap.r.c"
	tp.Meta.MsgID = 9
	e.Process(Egress, tp, 0)

	s := e.Metrics().Snapshot()
	if s.Name != "enclave.host0" {
		t.Errorf("registry name = %q", s.Name)
	}
	wantCounters := map[string]int64{
		"fn.steer.invocations":  3,
		"fn.trappy.invocations": 1,
		"fn.trappy.traps":       1,
		"queue.0.admitted_pkts": 3,
	}
	for name, want := range wantCounters {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if s.Counters["fn.steer.instructions"] == 0 {
		t.Error("per-function instructions not counted")
	}
	wantBytes := int64(3 * mkPkt(100).Size())
	if got := s.Counters["queue.0.admitted_bytes"]; got != wantBytes {
		t.Errorf("queue.0.admitted_bytes = %d, want %d", got, wantBytes)
	}
	if s.Gauges["queue.0.rate_bps"] != 8*1e9 {
		t.Errorf("queue.0.rate_bps = %d", s.Gauges["queue.0.rate_bps"])
	}
}

// The interpreter-latency histogram only exists when a wall clock is
// configured, and observes one value per interpreted invocation.
func TestInterpreterLatencyHistogram(t *testing.T) {
	var simNow, wallNow int64
	e := New(Config{
		Name:      "w",
		Clock:     func() int64 { simNow++; return simNow },
		WallClock: func() int64 { wallNow += 50; return wallNow },
	})
	e.InstallFunc(compiler.MustCompile("f", "fun (p,m,g) ->\n p.priority <- 1"))
	e.CreateTable(Egress, "t")
	e.AddRule(Egress, "t", Rule{Pattern: "*", Func: "f"})
	for i := 0; i < 4; i++ {
		p := mkPkt(10)
		p.Meta.Class = "a.b.c"
		p.Meta.MsgID = uint64(i + 1)
		e.Process(Egress, p, 0)
	}
	h, ok := e.Metrics().Snapshot().Histograms["interp_ns"]
	if !ok {
		t.Fatal("no interp_ns histogram with WallClock set")
	}
	if h.Count != 4 || h.Sum != 4*50 {
		t.Errorf("histogram count=%d sum=%d, want 4/200", h.Count, h.Sum)
	}
	// Without a wall clock there is no histogram (sim clocks would lie).
	e2 := testEnclave(t)
	if _, ok := e2.Metrics().Snapshot().Histograms["interp_ns"]; ok {
		t.Error("interp_ns histogram present without WallClock")
	}
}

// A traced packet's life through the enclave reads classify -> match ->
// invoke -> enqueue.
func TestEnclaveTraceSequence(t *testing.T) {
	var now int64
	tr := trace.NewTracer(64, 1)
	e := New(Config{
		Name:   "enc",
		Clock:  func() int64 { now++; return now },
		Tracer: tr,
	})
	e.FlowClassifier().Add(FlowRule{DstPort: U16(80), Class: "enclave.flows.web"})
	e.AddQueue(8*1e9, 0)
	e.InstallFunc(compiler.MustCompile("steer", "fun (p,m,g) ->\n p.queue <- 0"))
	e.CreateTable(Egress, "t")
	e.AddRule(Egress, "t", Rule{Pattern: "enclave.flows.*", Func: "steer"})

	p := mkPkt(100) // dst port 80
	if !tr.Sample(p) {
		t.Fatal("packet not sampled")
	}
	if v := e.Process(Egress, p, 0); !v.Queued {
		t.Fatal("packet not queued")
	}

	evs := tr.PacketEvents(p.Meta.TraceID)
	want := []trace.Kind{trace.KindClassify, trace.KindMatch, trace.KindInvoke, trace.KindEnqueue}
	if len(evs) != len(want) {
		t.Fatalf("got %d events %v, want kinds %v", len(evs), evs, want)
	}
	for i, k := range want {
		if evs[i].Kind != k {
			t.Errorf("event %d kind = %s, want %s", i, evs[i].Kind, k)
		}
		if evs[i].Node != "enc" {
			t.Errorf("event %d node = %q", i, evs[i].Node)
		}
	}
	if evs[0].Detail != "enclave.flows.web" {
		t.Errorf("classify detail = %q", evs[0].Detail)
	}
	if evs[1].Detail != "t/enclave.flows.*->steer" {
		t.Errorf("match detail = %q", evs[1].Detail)
	}
}

// Exercised under -race: Process racing AddRule and EndFlow.
func TestConcurrentProcessAddRuleEndFlow(t *testing.T) {
	e := testEnclave(t)
	e.FlowClassifier().Add(FlowRule{Class: "enclave.flows.all"})
	src := `
msg n : int
fun (p, m, g) ->
    m.n <- m.n + 1
`
	e.InstallFunc(compiler.MustCompile("f", src))
	e.CreateTable(Egress, "t")
	e.AddRule(Egress, "t", Rule{Pattern: "enclave.*", Func: "f"})

	const workers, perWorker = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := mkFlowPkt(uint16(20000 + w*perWorker + i))
				e.Process(Egress, p, 0)
				if i%3 == 0 {
					e.EndFlow(p.Flow())
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			e.AddRule(Egress, "t", Rule{Pattern: "other.*", Func: "f"})
			e.RemoveRule(Egress, "t", "other.*")
		}
	}()
	wg.Wait()
	if got := e.Stats().Packets; got != workers*perWorker {
		t.Errorf("packets = %d, want %d", got, workers*perWorker)
	}
}
