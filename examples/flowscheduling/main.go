// Flowscheduling reproduces case study 1 (§5.1) in miniature: a
// request-response workload shares a 10 Gbps downlink with background
// bulk flows, and the PIAS action function — running interpreted in each
// sender's enclave — demotes flows through 802.1q priorities as they
// grow, cutting small-flow completion times versus the no-priority
// baseline.
//
// Run with: go run ./examples/flowscheduling
package main

import (
	"fmt"

	"eden/internal/apps"
	"eden/internal/funcs"
	"eden/internal/netsim"
	"eden/internal/packet"
	"eden/internal/stats"
	"eden/internal/transport"
	"eden/internal/workload"
)

func main() {
	fmt.Println("case study 1: flow scheduling (PIAS vs baseline)")
	base := run(false)
	pias := run(true)
	fmt.Printf("\n%-10s %14s %14s\n", "scheme", "avg FCT (us)", "p95 FCT (us)")
	fmt.Printf("%-10s %14.0f %14.0f\n", "baseline", base.Mean()/1000, base.Percentile(95)/1000)
	fmt.Printf("%-10s %14.0f %14.0f\n", "PIAS", pias.Mean()/1000, pias.Percentile(95)/1000)
	fmt.Printf("\nreduction: %.0f%% (avg), %.0f%% (p95)\n",
		(1-pias.Mean()/base.Mean())*100,
		(1-pias.Percentile(95)/base.Percentile(95))*100)
}

func run(withPIAS bool) *stats.Sample {
	sim := netsim.New(7)
	rate := 10 * netsim.Gbps

	client := netsim.NewHost(sim, "client", packet.MustParseIP("10.0.0.1"), transport.Options{})
	worker := netsim.NewHost(sim, "worker", packet.MustParseIP("10.0.0.2"), transport.Options{})
	bg := netsim.NewHost(sim, "bg", packet.MustParseIP("10.0.0.3"), transport.Options{})

	sw := netsim.NewSwitch(sim, "tor")
	for _, h := range []*netsim.Host{client, worker, bg} {
		port := sw.AddPort(netsim.NewLink(sim, "sw->"+h.NodeName(), rate, 5*netsim.Microsecond, 192*1024, h))
		sw.AddRoute(h.IP(), port)
		h.SetUplink(netsim.NewLink(sim, h.NodeName()+"->sw", rate, 5*netsim.Microsecond, 192*1024, sw))
	}

	if withPIAS {
		for _, h := range []*netsim.Host{client, worker, bg} {
			enc := h.NewOSEnclave()
			if err := funcs.InstallPIAS(enc, "sched", "*",
				[]int64{10 * 1024, 1024 * 1024}, []int64{7, 5}); err != nil {
				panic(err)
			}
		}
	}

	apps.NewRRServer(worker, 80)
	apps.NewBackgroundSink(client, 9000)
	apps.StartBackgroundFlow(bg, client.IP(), 9000, 256*1024*1024)

	rrc := apps.NewRRClient(client, worker.IP(), 80)
	dist := workload.SearchDist()
	arrivals := workload.NewPoisson(sim.Rand(), workload.RateForLoad(0.7, rate, dist))
	var schedule func()
	schedule = func() {
		rrc.Request(dist.Sample(sim.Rand()))
		sim.After(arrivals.NextAfter(), schedule)
	}
	sim.After(10*netsim.Millisecond, schedule)
	sim.Run(160 * netsim.Millisecond)

	fct := &stats.Sample{}
	for _, r := range rrc.Results {
		if r.RespSize < 10*1024 { // small flows
			fct.AddInt(r.FCT)
		}
	}
	fmt.Printf("  %s: %d small flows completed\n", scheme(withPIAS), fct.N())
	return fct
}

func scheme(pias bool) string {
	if pias {
		return "PIAS"
	}
	return "baseline"
}
