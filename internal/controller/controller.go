// Package controller implements Eden's logically centralized controller
// (§3.2) and the agents that expose enclaves and stages to it. The
// controller is "a coordination point where any part of the network
// function logic requiring global visibility resides": control-plane
// halves of network functions compute slowly changing state — WCMP path
// weights from topology, PIAS priority thresholds from the traffic
// distribution, Pulsar queue maps from tenant SLAs — and push it to the
// data plane through the stage API (Table 3) and the enclave API
// (§3.4.5), both carried over ctlproto.
package controller

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"eden/internal/compiler"
	"eden/internal/ctlproto"
	"eden/internal/enclave"
)

// Controller is the central control-plane server. Agents (enclaves and
// stages) dial in and register; the controller then programs them through
// the returned proxies.
type Controller struct {
	ln net.Listener

	mu       sync.Mutex
	enclaves map[string]*RemoteEnclave
	stages   map[string]*RemoteStage
	arrived  chan struct{}

	wg sync.WaitGroup
}

// Listen starts a controller on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		ln:       ln,
		enclaves: map[string]*RemoteEnclave{},
		stages:   map[string]*RemoteStage{},
		arrived:  make(chan struct{}, 64),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the controller's listen address.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// Close shuts the controller down and disconnects all agents.
func (c *Controller) Close() error {
	err := c.ln.Close()
	c.mu.Lock()
	for _, e := range c.enclaves {
		e.peer.Close()
	}
	for _, s := range c.stages {
		s.peer.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	return err
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(conn)
		}()
	}
}

// handleConn waits for the agent's hello, then registers it.
func (c *Controller) handleConn(conn net.Conn) {
	hello := make(chan ctlproto.Hello, 1)
	peer := ctlproto.NewPeer(conn, func(op string, params json.RawMessage) (any, error) {
		if op != ctlproto.OpHello {
			return nil, fmt.Errorf("controller: unexpected op %q before hello", op)
		}
		var h ctlproto.Hello
		if err := json.Unmarshal(params, &h); err != nil {
			return nil, err
		}
		select {
		case hello <- h:
		default:
		}
		return nil, nil
	})
	go func() {
		h, ok := <-hello
		if !ok {
			return
		}
		c.register(h, peer)
	}()
	_ = peer.Serve()
	close(hello)
	c.unregister(peer)
}

func (c *Controller) register(h ctlproto.Hello, peer *ctlproto.Peer) {
	c.mu.Lock()
	switch h.Kind {
	case "enclave":
		c.enclaves[h.Name] = &RemoteEnclave{Name: h.Name, Host: h.Host, Platform: h.Platform, peer: peer}
	case "stage":
		c.stages[h.Name] = &RemoteStage{Name: h.Name, Host: h.Host, peer: peer}
	}
	c.mu.Unlock()
	select {
	case c.arrived <- struct{}{}:
	default:
	}
}

func (c *Controller) unregister(peer *ctlproto.Peer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for n, e := range c.enclaves {
		if e.peer == peer {
			delete(c.enclaves, n)
		}
	}
	for n, s := range c.stages {
		if s.peer == peer {
			delete(c.stages, n)
		}
	}
}

// Enclave returns the registered enclave with the given name.
func (c *Controller) Enclave(name string) (*RemoteEnclave, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.enclaves[name]
	return e, ok
}

// Stage returns the registered stage with the given name.
func (c *Controller) Stage(name string) (*RemoteStage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.stages[name]
	return s, ok
}

// Enclaves lists registered enclave names.
func (c *Controller) Enclaves() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var names []string
	for n := range c.enclaves {
		names = append(names, n)
	}
	return names
}

// Stages lists registered stage names.
func (c *Controller) Stages() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var names []string
	for n := range c.stages {
		names = append(names, n)
	}
	return names
}

// WaitForAgents blocks until at least n agents (enclaves plus stages) are
// registered, or the timeout elapses.
func (c *Controller) WaitForAgents(n int, timeout time.Duration) error {
	deadline := time.After(timeout)
	for {
		c.mu.Lock()
		got := len(c.enclaves) + len(c.stages)
		c.mu.Unlock()
		if got >= n {
			return nil
		}
		select {
		case <-c.arrived:
		case <-deadline:
			return fmt.Errorf("controller: %d agents after %v, want %d", got, timeout, n)
		}
	}
}

// RemoteEnclave is the controller's proxy for one registered enclave,
// exposing the enclave API (§3.4.5) over the control channel.
type RemoteEnclave struct {
	Name     string
	Host     string
	Platform string
	peer     *ctlproto.Peer
}

// CreateTable creates a match-action table.
func (e *RemoteEnclave) CreateTable(dir enclave.Direction, table string) error {
	return e.peer.Call(ctlproto.OpEnclaveCreateTable, ctlproto.TableParams{Dir: int(dir), Table: table}, nil)
}

// DeleteTable removes a table.
func (e *RemoteEnclave) DeleteTable(dir enclave.Direction, table string) error {
	return e.peer.Call(ctlproto.OpEnclaveDeleteTable, ctlproto.TableParams{Dir: int(dir), Table: table}, nil)
}

// AddRule appends a match-action rule.
func (e *RemoteEnclave) AddRule(dir enclave.Direction, table, pattern, fn string) error {
	return e.peer.Call(ctlproto.OpEnclaveAddRule,
		ctlproto.RuleParams{Dir: int(dir), Table: table, Pattern: pattern, Func: fn}, nil)
}

// RemoveRule removes a rule by pattern.
func (e *RemoteEnclave) RemoveRule(dir enclave.Direction, table, pattern string) error {
	return e.peer.Call(ctlproto.OpEnclaveRemoveRule,
		ctlproto.RuleParams{Dir: int(dir), Table: table, Pattern: pattern}, nil)
}

// Install ships a compiled action function to the enclave.
func (e *RemoteEnclave) Install(f *compiler.Func) error {
	return e.peer.Call(ctlproto.OpEnclaveInstall, ctlproto.ToSpec(f), nil)
}

// Uninstall removes a function and its rules.
func (e *RemoteEnclave) Uninstall(name string) error {
	return e.peer.Call(ctlproto.OpEnclaveUninstall, ctlproto.GlobalParams{Func: name}, nil)
}

// UpdateGlobal pushes a global scalar.
func (e *RemoteEnclave) UpdateGlobal(fn, name string, v int64) error {
	return e.peer.Call(ctlproto.OpEnclaveUpdateGlobal,
		ctlproto.GlobalParams{Func: fn, Name: name, Value: v}, nil)
}

// UpdateGlobalArray pushes a global array.
func (e *RemoteEnclave) UpdateGlobalArray(fn, name string, vs []int64) error {
	return e.peer.Call(ctlproto.OpEnclaveUpdateArray,
		ctlproto.GlobalParams{Func: fn, Name: name, Values: vs}, nil)
}

// ReadGlobal reads a global scalar back.
func (e *RemoteEnclave) ReadGlobal(fn, name string) (int64, error) {
	var out struct {
		Value int64 `json:"value"`
	}
	err := e.peer.Call(ctlproto.OpEnclaveReadGlobal, ctlproto.GlobalParams{Func: fn, Name: name}, &out)
	return out.Value, err
}

// ReadGlobalArray reads a global array back.
func (e *RemoteEnclave) ReadGlobalArray(fn, name string) ([]int64, error) {
	var out struct {
		Values []int64 `json:"values"`
	}
	err := e.peer.Call(ctlproto.OpEnclaveReadArray, ctlproto.GlobalParams{Func: fn, Name: name}, &out)
	return out.Values, err
}

// Stats fetches the enclave's counters.
func (e *RemoteEnclave) Stats() (enclave.Stats, error) {
	var out enclave.Stats
	err := e.peer.Call(ctlproto.OpEnclaveStats, nil, &out)
	return out, err
}

// AddQueue creates a rate-limited queue, returning its index.
func (e *RemoteEnclave) AddQueue(rateBps, capBytes int64) (int, error) {
	var out struct {
		Index int `json:"index"`
	}
	err := e.peer.Call(ctlproto.OpEnclaveAddQueue,
		ctlproto.QueueParams{RateBps: rateBps, CapBytes: capBytes}, &out)
	return out.Index, err
}

// SetQueueRate reconfigures a queue's drain rate.
func (e *RemoteEnclave) SetQueueRate(idx int, rateBps int64) error {
	return e.peer.Call(ctlproto.OpEnclaveSetQueueRate,
		ctlproto.QueueParams{Index: idx, RateBps: rateBps}, nil)
}

// AddFlowRule installs a five-tuple classifier rule on the enclave.
func (e *RemoteEnclave) AddFlowRule(r ctlproto.FlowRuleParams) error {
	return e.peer.Call(ctlproto.OpEnclaveAddFlowRule, r, nil)
}

// TxBegin opens a policy transaction on the enclave agent. Subsequent
// structural mutations (tables, rules, installs, uninstalls) are staged
// and become visible to the data path atomically at TxCommit.
func (e *RemoteEnclave) TxBegin() error {
	return e.peer.Call(ctlproto.OpEnclaveTxBegin, nil, nil)
}

// TxCommit atomically publishes the staged transaction, returning the new
// pipeline generation. On error (including failed bytecode verification of
// any staged function) nothing is published.
func (e *RemoteEnclave) TxCommit() (uint64, error) {
	var out ctlproto.TxResult
	err := e.peer.Call(ctlproto.OpEnclaveTxCommit, nil, &out)
	return out.Generation, err
}

// TxAbort discards the staged transaction without publishing anything.
func (e *RemoteEnclave) TxAbort() error {
	return e.peer.Call(ctlproto.OpEnclaveTxAbort, nil, nil)
}

// Generation reads the enclave's currently published pipeline generation.
func (e *RemoteEnclave) Generation() (uint64, error) {
	var out ctlproto.TxResult
	err := e.peer.Call(ctlproto.OpEnclaveGeneration, nil, &out)
	return out.Generation, err
}

// RemoteStage is the controller's proxy for one registered stage,
// exposing the stage API (Table 3).
type RemoteStage struct {
	Name string
	Host string
	peer *ctlproto.Peer
}

// StageInfo mirrors stage.Info for transport.
type StageInfo struct {
	Name        string   `json:"name"`
	Classifiers []string `json:"classifiers"`
	MetaFields  []string `json:"meta_fields"`
	RuleSets    []string `json:"rule_sets"`
}

// Info implements getStageInfo (S0).
func (s *RemoteStage) Info() (StageInfo, error) {
	var out StageInfo
	err := s.peer.Call(ctlproto.OpStageInfo, nil, &out)
	return out, err
}

// CreateRule implements createStageRule (S1); rule text uses Figure 6's
// syntax. It returns the rule identifier.
func (s *RemoteStage) CreateRule(ruleSet, rule string) (int, error) {
	var out struct {
		RuleID int `json:"rule_id"`
	}
	err := s.peer.Call(ctlproto.OpStageCreateRule,
		ctlproto.StageRuleParams{RuleSet: ruleSet, Rule: rule}, &out)
	return out.RuleID, err
}

// RemoveRule implements removeStageRule (S2).
func (s *RemoteStage) RemoveRule(ruleSet string, id int) error {
	return s.peer.Call(ctlproto.OpStageRemoveRule,
		ctlproto.StageRuleParams{RuleSet: ruleSet, RuleID: id}, nil)
}
