// Package workload generates the synthetic traffic the evaluation drives
// its experiments with: the search-application flow-size distribution of
// §5.1 (short request-response flows, most under 10KB, with a tail into
// the megabytes), Poisson arrival processes for open-loop load, and the
// 64KB storage IO workload of §5.3. The real traces from [2, 8] are not
// public; the synthetic distributions keep the structural property the
// experiments depend on — a mix of small, intermediate and large flows
// competing at a bottleneck (see DESIGN.md, substitutions).
package workload

import (
	"math"
	"math/rand"
)

// SizeBucket is one segment of a piecewise flow-size distribution: with
// probability Weight (relative), sizes are log-uniform in [Min, Max].
type SizeBucket struct {
	Weight   float64
	Min, Max int64
}

// SizeDist samples flow sizes from a piecewise log-uniform mixture.
type SizeDist struct {
	buckets []SizeBucket
	total   float64
}

// NewSizeDist builds a distribution from buckets (weights need not sum to
// one).
func NewSizeDist(buckets []SizeBucket) *SizeDist {
	d := &SizeDist{buckets: buckets}
	for _, b := range buckets {
		if b.Weight < 0 || b.Min <= 0 || b.Max < b.Min {
			panic("workload: invalid size bucket")
		}
		d.total += b.Weight
	}
	if d.total <= 0 {
		panic("workload: empty size distribution")
	}
	return d
}

// SearchDist returns the web-search-like response-size distribution used
// by the flow-scheduling experiments (§5.1): mostly small flows of a few
// packets, an intermediate band, and a heavy tail. The priority
// thresholds in the paper (10KB and 1MB) split it into the small /
// intermediate / background classes of Figure 9.
func SearchDist() *SizeDist {
	return NewSizeDist([]SizeBucket{
		{Weight: 0.62, Min: 1 * 1024, Max: 10 * 1024},           // small
		{Weight: 0.28, Min: 10 * 1024, Max: 1024 * 1024},        // intermediate
		{Weight: 0.10, Min: 1024 * 1024, Max: 16 * 1024 * 1024}, // large
	})
}

// Sample draws a flow size.
func (d *SizeDist) Sample(rng *rand.Rand) int64 {
	r := rng.Float64() * d.total
	for _, b := range d.buckets {
		if r < b.Weight || b.Weight == d.total {
			if b.Min == b.Max {
				return b.Min
			}
			// Log-uniform within the bucket.
			lo, hi := math.Log(float64(b.Min)), math.Log(float64(b.Max))
			return int64(math.Round(math.Exp(lo + rng.Float64()*(hi-lo))))
		}
		r -= b.Weight
	}
	last := d.buckets[len(d.buckets)-1]
	return last.Max
}

// Mean estimates the distribution's mean analytically (log-uniform bucket
// mean is (max-min)/ln(max/min)).
func (d *SizeDist) Mean() float64 {
	var m float64
	for _, b := range d.buckets {
		var bm float64
		if b.Min == b.Max {
			bm = float64(b.Min)
		} else {
			bm = float64(b.Max-b.Min) / math.Log(float64(b.Max)/float64(b.Min))
		}
		m += b.Weight / d.total * bm
	}
	return m
}

// Poisson generates exponential interarrival times for a target rate of
// events per second.
type Poisson struct {
	rng  *rand.Rand
	rate float64 // events per second
}

// NewPoisson creates a Poisson arrival process.
func NewPoisson(rng *rand.Rand, eventsPerSec float64) *Poisson {
	if eventsPerSec <= 0 {
		panic("workload: rate must be positive")
	}
	return &Poisson{rng: rng, rate: eventsPerSec}
}

// NextAfter returns the nanoseconds until the next arrival.
func (p *Poisson) NextAfter() int64 {
	d := p.rng.ExpFloat64() / p.rate * 1e9
	if d < 1 {
		d = 1
	}
	return int64(d)
}

// RateForLoad returns the request rate (per second) that produces the
// given utilization of a link, for flows drawn from d.
//
//	rate = load * linkBps/8 / mean(d)
func RateForLoad(load float64, linkBps int64, d *SizeDist) float64 {
	return load * float64(linkBps) / 8 / d.Mean()
}

// IOWorkload describes one tenant's storage workload for the datacenter
// QoS experiment (§5.3).
type IOWorkload struct {
	// OpSize is the IO operation size in bytes (64KB in the paper).
	OpSize int64
	// Read selects READ (true) or WRITE (false) operations.
	Read bool
	// SubmitPerSec is the open-loop submission rate of IO requests. READ
	// tenants can submit far faster than the server can serve, because
	// read requests are tiny on the forward path — exactly the asymmetry
	// Pulsar's rate control corrects (Figure 3); WRITE submissions are
	// naturally limited by the network carrying their payload.
	SubmitPerSec float64
	// Count bounds total submissions (0 = unbounded).
	Count int
}
