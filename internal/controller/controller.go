// Package controller implements Eden's logically centralized controller
// (§3.2) and the agents that expose enclaves and stages to it. The
// controller is "a coordination point where any part of the network
// function logic requiring global visibility resides": control-plane
// halves of network functions compute slowly changing state — WCMP path
// weights from topology, PIAS priority thresholds from the traffic
// distribution, Pulsar queue maps from tenant SLAs — and push it to the
// data plane through the stage API (Table 3) and the enclave API
// (§3.4.5), both carried over ctlproto.
package controller

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"time"

	"eden/internal/compiler"
	"eden/internal/ctlproto"
	"eden/internal/enclave"
	"eden/internal/metrics"
	"eden/internal/telemetry"
)

// Controller is the central control-plane server. Agents (enclaves and
// stages) dial in and register; the controller then programs them through
// the returned proxies.
type Controller struct {
	ln net.Listener

	mu       sync.Mutex
	enclaves map[string]*RemoteEnclave
	stages   map[string]*RemoteStage
	status   map[string]*agentState // keyed kind+"/"+name; survives disconnects
	conns    map[*ctlproto.Peer]struct{}
	closing  bool
	arrived  chan struct{}
	done     chan struct{} // closed by Close; unblocks resync backoff waits

	policies *PolicyStore

	// Resync fan-out: one coalescing job per enclave name, all jobs
	// sharing a semaphore so a churn storm resyncs at most resyncLimit
	// agents at a time. Triggers (re-hellos, pushed deltas) arriving while
	// an agent's job is running fold into one follow-up pass.
	resyncJobs     map[string]*resyncJob
	resyncSem      chan struct{}
	resyncRetryMin time.Duration
	resyncAttempts int

	// degradedAfter and idleTimeout tune liveness; see SetLiveness.
	degradedAfter time.Duration
	idleTimeout   time.Duration

	// spans records the controller side of every control operation
	// (serve.hello, rpc.enclave.*, resyncs); always on, bounded ring.
	spans *telemetry.Recorder
	// logger receives structured control-plane events (registrations,
	// disconnects, resync outcomes). Defaults to discard; see SetLogger.
	logger *slog.Logger

	// Fleet metrics rollups (see fleet.go): per-agent cumulative
	// snapshots built from OpMetricsPush, under their own lock so push
	// application never contends with registration or resync.
	fleetMu sync.Mutex
	fleet   map[string]*agentRollup

	// reg is the controller's own metrics registry ("controller").
	reg               *metrics.Registry
	mHellos           *metrics.Counter
	mResyncs          *metrics.Counter
	mResyncsDelta     *metrics.Counter
	mResyncsFull      *metrics.Counter
	mResyncOps        *metrics.Counter
	mResyncBytes      *metrics.Counter
	mResyncsCoalesced *metrics.Counter
	mResyncRetries    *metrics.Counter
	mResyncErrors     *metrics.Counter
	mMetricsPushes    *metrics.Counter
	mAgentsConnects   *metrics.Gauge

	wg sync.WaitGroup
}

// resyncJob is the coalescing slot for one enclave's pending resync work.
type resyncJob struct {
	pending bool // a trigger arrived while the job was running
}

// Resync fan-out defaults; see SetResyncLimit and SetResyncRetry.
const (
	DefaultResyncLimit    = 32
	defaultResyncRetryMin = 50 * time.Millisecond
	defaultResyncAttempts = 6
)

// DefaultDegradedAfter is how long an agent may be silent before
// AgentStatus reports it degraded rather than connected. Heartbeating
// agents (see ReconnectConfig.Heartbeat) refresh liveness on every ping.
const DefaultDegradedAfter = 5 * time.Second

// Listen starts a controller on addr (e.g. "127.0.0.1:0") with a fresh
// in-memory policy store.
func Listen(addr string) (*Controller, error) {
	return ListenWithPolicies(addr, NewPolicyStore())
}

// ListenWithPolicies starts a controller backed by an existing policy
// store. A restarted controller handed the previous incarnation's store
// can verify reconnecting agents against the intended policy and replay
// it where stale — the Merlin-style re-negotiation after control-plane
// disruption.
func ListenWithPolicies(addr string, store *PolicyStore) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry("controller")
	c := &Controller{
		ln:             ln,
		enclaves:       map[string]*RemoteEnclave{},
		stages:         map[string]*RemoteStage{},
		status:         map[string]*agentState{},
		conns:          map[*ctlproto.Peer]struct{}{},
		arrived:        make(chan struct{}, 64),
		done:           make(chan struct{}),
		policies:       store,
		resyncJobs:     map[string]*resyncJob{},
		resyncSem:      make(chan struct{}, DefaultResyncLimit),
		resyncRetryMin: defaultResyncRetryMin,
		resyncAttempts: defaultResyncAttempts,
		degradedAfter:  DefaultDegradedAfter,
		spans:          telemetry.NewRecorder(0),
		logger:         telemetry.DiscardLogger(),

		reg:               reg,
		mHellos:           reg.Counter("hellos"),
		mResyncs:          reg.Counter("resyncs"),
		mResyncsDelta:     reg.Counter("resyncs_delta"),
		mResyncsFull:      reg.Counter("resyncs_full"),
		mResyncOps:        reg.Counter("resync_ops"),
		mResyncBytes:      reg.Counter("resync_bytes"),
		mResyncsCoalesced: reg.Counter("resyncs_coalesced"),
		mResyncRetries:    reg.Counter("resync_retries"),
		mResyncErrors:     reg.Counter("resync_errors"),
		mMetricsPushes:    reg.Counter("metrics_pushes"),
		mAgentsConnects:   reg.Gauge("agents_connected"),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// SetLogger directs the controller's structured log (agent registrations,
// disconnects, resync outcomes) to l; nil restores the discard default.
func (c *Controller) SetLogger(l *slog.Logger) {
	if l == nil {
		l = telemetry.DiscardLogger()
	}
	c.mu.Lock()
	c.logger = l
	c.mu.Unlock()
}

func (c *Controller) log() *slog.Logger {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logger
}

// Spans returns the controller's span recorder. Merge agent-side spans
// with SpanDump.
func (c *Controller) Spans() *telemetry.Recorder { return c.spans }

// Metrics returns the controller's own registry (hellos, resyncs,
// agents_connected), for inclusion in an ops endpoint's metric set.
func (c *Controller) Metrics() *metrics.Registry { return c.reg }

// Policies returns the controller's policy store (shareable across
// controller restarts via ListenWithPolicies).
func (c *Controller) Policies() *PolicyStore { return c.policies }

// SetLiveness tunes liveness detection: degradedAfter is the silence
// after which a connected agent is reported degraded; idleTimeout, when
// non-zero, tears down connections silent for that long (apply it only to
// heartbeating agents). Affects connections accepted after the call.
func (c *Controller) SetLiveness(degradedAfter, idleTimeout time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if degradedAfter > 0 {
		c.degradedAfter = degradedAfter
	}
	c.idleTimeout = idleTimeout
}

// SetResyncLimit bounds how many agents the controller resyncs
// concurrently (the push fan-out width). n <= 0 restores the default.
// Affects resyncs scheduled after the call.
func (c *Controller) SetResyncLimit(n int) {
	if n <= 0 {
		n = DefaultResyncLimit
	}
	c.mu.Lock()
	c.resyncSem = make(chan struct{}, n)
	c.mu.Unlock()
}

// SetResyncRetry tunes how a failed resync pass is retried: min is the
// first backoff (doubling per retry), attempts the bound on passes per
// trigger. Zero values restore the defaults. After the last attempt the
// agent keeps its resync error until the next trigger (re-hello or pushed
// delta) re-queues it.
func (c *Controller) SetResyncRetry(min time.Duration, attempts int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if min <= 0 {
		min = defaultResyncRetryMin
	}
	if attempts <= 0 {
		attempts = defaultResyncAttempts
	}
	c.resyncRetryMin = min
	c.resyncAttempts = attempts
}

// Addr returns the controller's listen address.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// Close shuts the controller down and disconnects all agents (including
// connections that never completed a hello).
func (c *Controller) Close() error {
	err := c.ln.Close()
	c.mu.Lock()
	if !c.closing {
		c.closing = true
		close(c.done)
	}
	peers := make([]*ctlproto.Peer, 0, len(c.conns))
	for p := range c.conns {
		peers = append(peers, p)
	}
	c.mu.Unlock()
	for _, p := range peers {
		p.Close()
	}
	c.wg.Wait()
	return err
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(conn)
		}()
	}
}

// handleConn waits for the agent's hello, then registers it. The hello is
// registered synchronously inside the handler, guarded by a per-connection
// gate: a hello frame racing connection teardown is rejected rather than
// registered after (or while) the connection is being unregistered.
func (c *Controller) handleConn(conn net.Conn) {
	var (
		gate       sync.Mutex
		ended      bool
		registered bool
		agentName  string
	)
	var peer *ctlproto.Peer
	peer = ctlproto.NewPeer(conn, func(op string, params json.RawMessage, trace uint64) (any, error) {
		if op == ctlproto.OpMetricsPush {
			gate.Lock()
			name, ok := agentName, registered && !ended
			gate.Unlock()
			if !ok {
				return nil, fmt.Errorf("controller: metrics push before hello")
			}
			return nil, c.applyMetricsPush(name, params)
		}
		if op != ctlproto.OpHello {
			return nil, fmt.Errorf("controller: unexpected op %q before hello", op)
		}
		var h ctlproto.Hello
		if err := json.Unmarshal(params, &h); err != nil {
			return nil, err
		}
		if h.Name == "" {
			return nil, fmt.Errorf("controller: hello without a name")
		}
		gate.Lock()
		defer gate.Unlock()
		if ended {
			return nil, fmt.Errorf("controller: connection closing")
		}
		if registered {
			return nil, fmt.Errorf("controller: duplicate hello on one connection")
		}
		if err := c.register(h, peer); err != nil {
			return nil, err
		}
		registered = true
		agentName = h.Name
		return nil, nil
	})
	peer.Instrument(c.spans, "controller")
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		peer.Close()
		return
	}
	idle := c.idleTimeout
	c.conns[peer] = struct{}{}
	c.mu.Unlock()
	if idle > 0 {
		peer.SetReadIdleTimeout(idle)
	}
	_ = peer.Serve()
	gate.Lock()
	ended = true
	gate.Unlock()
	c.unregister(peer)
	c.mu.Lock()
	delete(c.conns, peer)
	c.mu.Unlock()
}

func statusKey(kind, name string) string { return kind + "/" + name }

func (c *Controller) register(h ctlproto.Hello, peer *ctlproto.Peer) error {
	c.mu.Lock()
	var old *ctlproto.Peer
	switch h.Kind {
	case "enclave":
		// A re-hello under an existing name supersedes the old
		// registration: the agent reconnected (possibly before the
		// controller noticed the old connection die), so the newest
		// connection wins and the stale one is torn down explicitly.
		if prev, ok := c.enclaves[h.Name]; ok && prev.peer != peer {
			old = prev.peer
		}
		c.enclaves[h.Name] = &RemoteEnclave{Name: h.Name, Host: h.Host, Platform: h.Platform, peer: peer, ctl: c}
	case "stage":
		if prev, ok := c.stages[h.Name]; ok && prev.peer != peer {
			old = prev.peer
		}
		c.stages[h.Name] = &RemoteStage{Name: h.Name, Host: h.Host, peer: peer}
	default:
		c.mu.Unlock()
		return fmt.Errorf("controller: unknown agent kind %q", h.Kind)
	}
	key := statusKey(h.Kind, h.Name)
	st := c.status[key]
	if st == nil {
		st = &agentState{kind: h.Kind, name: h.Name}
		c.status[key] = st
	}
	st.peer = peer
	st.connects++
	st.generation = h.Generation
	if st.epoch != h.Epoch {
		// A different boot epoch is a fresh enclave instance: whatever
		// globals the previous instance confirmed died with it, so the
		// replay cursor restarts from the beginning.
		st.globalsSeq = 0
	}
	st.epoch = h.Epoch
	st.lastHello = time.Now()
	needResync := false
	if h.Kind == "enclave" {
		// A generation mismatch means the enclave is stale (or ahead);
		// a leftover resync error means the last replay did not finish
		// (e.g. globals landed partially) — both re-queue the agent.
		if pol, ok := c.policies.get(h.Name); ok &&
			(pol.Generation != 0 || len(pol.Structural) > 0) &&
			(pol.Generation != h.Generation || st.resyncErr != "") {
			needResync = true
		}
	}
	c.mHellos.Inc()
	c.mAgentsConnects.Set(c.connectedLocked())
	logger := c.logger
	c.mu.Unlock()
	logger.Info("agent registered",
		"component", "controller", "kind", h.Kind, "agent", h.Name,
		"host", h.Host, "generation", h.Generation, "resync", needResync)
	if old != nil {
		old.Close()
	}
	if needResync {
		c.scheduleResync(h.Name)
	}
	select {
	case c.arrived <- struct{}{}:
	default:
	}
	return nil
}

// connectedLocked counts agents with a live connection; c.mu must be held.
func (c *Controller) connectedLocked() int64 {
	var n int64
	for _, st := range c.status {
		if st.peer != nil {
			n++
		}
	}
	return n
}

// unregister removes an agent's registration, but only where it still
// points at the dying peer: an entry superseded by a newer connection
// must survive the old connection's teardown.
func (c *Controller) unregister(peer *ctlproto.Peer) {
	c.mu.Lock()
	var gone []string
	for n, e := range c.enclaves {
		if e.peer == peer {
			delete(c.enclaves, n)
			gone = append(gone, "enclave/"+n)
		}
	}
	for n, s := range c.stages {
		if s.peer == peer {
			delete(c.stages, n)
			gone = append(gone, "stage/"+n)
		}
	}
	for _, st := range c.status {
		if st.peer == peer {
			st.peer = nil
			st.lastSeen = peer.LastActivity()
		}
	}
	c.mAgentsConnects.Set(c.connectedLocked())
	logger := c.logger
	c.mu.Unlock()
	for _, name := range gone {
		logger.Info("agent disconnected", "component", "controller", "agent", name)
	}
}

// PushDelta records a controller-computed policy slice for one enclave —
// the Merlin-style per-device delta — and distributes it: a connected
// agent gets a coalesced push through the resync fan-out, an absent one
// catches up from the op-log (or a full replay) on its next re-hello. It
// returns the new intended generation. The ops extend the cumulative
// structural policy, so they must be valid on top of the current one.
func (c *Controller) PushDelta(name string, ops []PolicyOp) uint64 {
	gen := c.policies.appendDelta(name, ops)
	c.scheduleResync(name)
	return gen
}

// scheduleResync queues a resync pass for the named enclave. A trigger
// arriving while the agent's job is already running (a churn storm's
// repeated flaps, a burst of pushed deltas) folds into one follow-up pass
// instead of piling up goroutines — one resync per agent, not one per
// flap.
func (c *Controller) scheduleResync(name string) {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return
	}
	if j := c.resyncJobs[name]; j != nil {
		j.pending = true
		c.mu.Unlock()
		c.mResyncsCoalesced.Inc()
		return
	}
	j := &resyncJob{}
	c.resyncJobs[name] = j
	sem := c.resyncSem
	c.wg.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.wg.Done()
		c.runResync(name, j, sem)
	}()
}

// runResync is one enclave's resync worker: it holds a fan-out slot,
// retries failed passes with bounded exponential backoff (a pass that
// committed structurally but lost the globals replay is retried — the
// agent must not sit degraded with partially applied globals), and loops
// while coalesced triggers are pending.
func (c *Controller) runResync(name string, j *resyncJob, sem chan struct{}) {
	select {
	case sem <- struct{}{}:
	case <-c.done:
		c.mu.Lock()
		delete(c.resyncJobs, name)
		c.mu.Unlock()
		return
	}
	defer func() { <-sem }()
	for {
		c.mu.Lock()
		backoff, attempts := c.resyncRetryMin, c.resyncAttempts
		c.mu.Unlock()
		for attempt := 0; attempt < attempts; attempt++ {
			if attempt > 0 {
				c.mResyncRetries.Inc()
				select {
				case <-time.After(backoff):
				case <-c.done:
					c.mu.Lock()
					delete(c.resyncJobs, name)
					c.mu.Unlock()
					return
				}
				backoff *= 2
			}
			done, err := c.resyncOnce(name)
			if done {
				break
			}
			if err != nil {
				c.mResyncErrors.Inc()
				c.log().Warn("policy resync failed",
					"component", "controller", "agent", name,
					"attempt", attempt+1, "err", err)
			}
		}
		// Re-run if a trigger arrived while this pass ran; otherwise
		// retire the job (a later trigger starts a fresh one).
		c.mu.Lock()
		if j.pending {
			j.pending = false
			c.mu.Unlock()
			continue
		}
		delete(c.resyncJobs, name)
		c.mu.Unlock()
		return
	}
}

// resyncOnce runs one resync pass against the named enclave: a delta
// transaction when the op-log covers the agent's generation (full replay
// otherwise), then the recorded global pushes. It reports done when no
// further pass is needed — the agent converged, disconnected (the next
// re-hello re-queues), or has no intended policy.
func (c *Controller) resyncOnce(name string) (done bool, err error) {
	const opTimeout = 10 * time.Second
	c.mu.Lock()
	re := c.enclaves[name]
	st := c.status[statusKey("enclave", name)]
	c.mu.Unlock()
	if re == nil || st == nil {
		return true, nil
	}
	c.mu.Lock()
	agentGen, agentEpoch := st.generation, st.epoch
	gseq := st.globalsSeq
	hadErr := st.resyncErr != ""
	c.mu.Unlock()
	pol, ok := c.policies.get(name)
	if !ok || (pol.Generation == 0 && len(pol.Structural) == 0) {
		return true, nil
	}
	if pol.Generation == agentGen && !hadErr {
		return true, nil // converged, nothing outstanding
	}

	trace := c.spans.NewTraceID()
	re.peer.SetTrace(trace)
	defer re.peer.SetTrace(0)
	span := c.spans.Start(trace, "controller", "controller.resync")
	span.SetAttr("agent", name)
	span.SetAttr("intended_generation", strconv.FormatUint(pol.Generation, 10))
	fail := func(err error) (bool, error) {
		c.mu.Lock()
		st.resyncErr = err.Error()
		stale := c.enclaves[name] == nil || c.enclaves[name].peer != re.peer
		c.mu.Unlock()
		span.End(err)
		if stale {
			// The connection died or was superseded mid-pass (a flap): not
			// a resync failure worth retrying or counting — the leftover
			// resyncErr makes the next re-hello re-queue the agent.
			return true, nil
		}
		// Best effort: refresh the agent's generation so the retry (and
		// the delta-vs-full decision) works from where the pipeline
		// actually is, not where the failed pass assumed it was.
		var cur ctlproto.TxResult
		if gerr := re.peer.CallTimeout(ctlproto.OpEnclaveGeneration, nil, &cur, opTimeout); gerr == nil {
			c.mu.Lock()
			st.generation = cur.Generation
			c.mu.Unlock()
		}
		return false, err
	}

	if pol.Generation != agentGen {
		// The delta is bounded at the snapshot's generation: ops a
		// concurrent PushDelta appended after the get above must not ride
		// along, or completeResync's CAS-miss rebase would re-ship ops the
		// agent already executed (duplicating rules, or wedging resync on
		// a duplicate install).
		ops, isDelta := c.policies.deltaSince(name, agentGen, pol.Generation, agentEpoch)
		if !isDelta {
			ops = pol.Structural
		}
		mode := "full"
		if isDelta {
			mode = "delta"
		}
		span.SetAttr("mode", mode)
		span.SetAttr("structural_ops", strconv.Itoa(len(ops)))
		if err := re.peer.CallTimeout(ctlproto.OpEnclaveTxBegin, nil, nil, opTimeout); err != nil {
			return fail(err)
		}
		if !isDelta {
			// A full replay swaps the whole pipeline: the staged reset makes
			// it correct whatever the enclave currently runs (a dirty
			// pipeline after a truncated op-log, a half-synced retry), where
			// replaying onto existing state would trip duplicate errors.
			if err := re.peer.CallTimeout(ctlproto.OpEnclaveTxReset, nil, nil, opTimeout); err != nil {
				_ = re.peer.CallTimeout(ctlproto.OpEnclaveTxAbort, nil, nil, opTimeout)
				return fail(err)
			}
		}
		var bytes int64
		for _, op := range ops {
			if err := re.peer.CallTimeout(op.Op, op.Params, nil, opTimeout); err != nil {
				_ = re.peer.CallTimeout(ctlproto.OpEnclaveTxAbort, nil, nil, opTimeout)
				return fail(err)
			}
			bytes += int64(len(op.Params))
		}
		// The commit is guarded by the generation the replay was computed
		// against: if the pipeline moved underneath (a concurrent
		// transaction on a fresh connection), the agent rejects it and the
		// retry recomputes from the new generation.
		var res ctlproto.TxResult
		commitParams := ctlproto.TxCommitParams{Base: agentGen, Check: true}
		if err := re.peer.CallTimeout(ctlproto.OpEnclaveTxCommit, commitParams, &res, opTimeout); err != nil {
			return fail(err)
		}
		// Record the committed generation immediately: whatever happens to
		// the globals replay below, the pipeline IS at res.Generation now,
		// and forgetting that is how an agent gets wedged re-replaying a
		// transaction it already has.
		//
		// A full replay reset the pipeline (every function restarted at
		// its defaults), and a delta that installed or uninstalled
		// functions reset at least the touched ones — either way the
		// agent's confirmed-globals cursor no longer holds, so rewind it
		// and replay every recorded global below. Rule-only deltas (the
		// churn steady state) keep the cursor and replay nothing.
		resetGlobals := !isDelta
		for _, op := range ops {
			if op.Op == ctlproto.OpEnclaveInstall || op.Op == ctlproto.OpEnclaveUninstall {
				resetGlobals = true
				break
			}
		}
		c.mu.Lock()
		st.generation = res.Generation
		if isDelta {
			st.deltaResyncs++
		} else {
			st.fullResyncs++
		}
		if resetGlobals {
			st.globalsSeq = 0
			gseq = 0
		}
		c.mu.Unlock()
		c.mResyncOps.Add(int64(len(ops)))
		c.mResyncBytes.Add(bytes)
		if isDelta {
			c.mResyncsDelta.Inc()
		} else {
			c.mResyncsFull.Inc()
		}
		span.SetAttr("generation", strconv.FormatUint(res.Generation, 10))
		// Conditional on the generation observed when the policy was
		// snapshotted: a concurrent commit moving the store past it means
		// this replay is already stale — keep the newer intent and go
		// around again rather than overwrite it (the lost-update hole).
		if !c.policies.completeResync(name, pol.Generation, res.Generation, agentEpoch) {
			err := fmt.Errorf("controller: resync of %s superseded by a concurrent commit", name)
			c.mu.Lock()
			st.resyncErr = err.Error()
			c.mu.Unlock()
			span.End(err)
			return false, err
		}
	}

	// Replay only the globals the agent has not confirmed (seq > cursor):
	// a rule-only delta pass ships zero globals instead of the whole
	// recorded set, so churn-phase resync cost stays proportional to the
	// delta. The cursor advances per landed op, so a pass that dies
	// mid-replay resumes where it stopped; replayed globals count into
	// resync_ops/resync_bytes like structural ops.
	gops, gseqs := c.policies.globalsSince(name, gseq)
	span.SetAttr("global_ops", strconv.Itoa(len(gops)))
	var gbytes int64
	for i, op := range gops {
		if err := re.peer.CallTimeout(op.Op, op.Params, nil, opTimeout); err != nil {
			c.mResyncOps.Add(int64(i))
			c.mResyncBytes.Add(gbytes)
			return fail(err)
		}
		gbytes += int64(len(op.Params))
		c.mu.Lock()
		if gseqs[i] > st.globalsSeq {
			st.globalsSeq = gseqs[i]
		}
		c.mu.Unlock()
	}
	c.mResyncOps.Add(int64(len(gops)))
	c.mResyncBytes.Add(gbytes)

	c.mu.Lock()
	gen := st.generation
	st.resyncs++
	st.resyncErr = ""
	c.mu.Unlock()
	c.mResyncs.Inc()
	span.End(nil)
	c.log().Info("policy resync complete",
		"component", "controller", "agent", name, "generation", gen)
	return c.converged(name), nil
}

// converged reports whether the named enclave's generation matches the
// intended one (more deltas may have landed while a pass ran).
func (c *Controller) converged(name string) bool {
	c.mu.Lock()
	st := c.status[statusKey("enclave", name)]
	var gen uint64
	if st != nil {
		gen = st.generation
	}
	c.mu.Unlock()
	pol, ok := c.policies.get(name)
	return !ok || st == nil || pol.Generation == gen
}

// Enclave returns the registered enclave with the given name.
func (c *Controller) Enclave(name string) (*RemoteEnclave, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.enclaves[name]
	return e, ok
}

// Stage returns the registered stage with the given name.
func (c *Controller) Stage(name string) (*RemoteStage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.stages[name]
	return s, ok
}

// Enclaves lists registered enclave names.
func (c *Controller) Enclaves() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var names []string
	for n := range c.enclaves {
		names = append(names, n)
	}
	return names
}

// Stages lists registered stage names.
func (c *Controller) Stages() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var names []string
	for n := range c.stages {
		names = append(names, n)
	}
	return names
}

// WaitForAgents blocks until at least n agents (enclaves plus stages) are
// registered, or the timeout elapses.
func (c *Controller) WaitForAgents(n int, timeout time.Duration) error {
	deadline := time.After(timeout)
	for {
		c.mu.Lock()
		got := len(c.enclaves) + len(c.stages)
		c.mu.Unlock()
		if got >= n {
			return nil
		}
		select {
		case <-c.arrived:
		case <-deadline:
			return fmt.Errorf("controller: %d agents after %v, want %d", got, timeout, n)
		}
	}
}

// Liveness classifies an agent's control-channel health.
type Liveness int

// Liveness states. A connected agent that has been silent longer than the
// degraded threshold is Degraded: its connection is up but it may be
// wedged or partitioned (TCP keeps half-open connections alive for a long
// time). Gone means no live connection; the enclave, per the paper's
// graceful-degradation contract, keeps forwarding on its last-installed
// policy.
const (
	Gone Liveness = iota
	Degraded
	Connected
)

// MarshalJSON renders the liveness as its name, so JSON liveness dumps
// (the ops endpoint's /agentz) read "connected" rather than an enum int.
func (l Liveness) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// String names the liveness state.
func (l Liveness) String() string {
	switch l {
	case Connected:
		return "connected"
	case Degraded:
		return "degraded"
	default:
		return "gone"
	}
}

// agentState is the controller's liveness record for one agent name. It
// outlives individual connections: reconnects update it, disconnects mark
// it gone but keep the history.
type agentState struct {
	kind, name   string
	peer         *ctlproto.Peer // nil while disconnected
	connects     int
	resyncs      int
	deltaResyncs int
	fullResyncs  int
	resyncErr    string
	generation   uint64
	epoch        uint64 // enclave boot id; generations comparable only within one epoch
	// globalsSeq is the highest recorded-global sequence number the agent
	// is known to hold (live pushes and resync replays advance it; a new
	// epoch or a pipeline-resetting replay rewinds it to 0). Resync
	// passes replay only globals past this cursor.
	globalsSeq uint64
	lastHello  time.Time
	lastSeen   time.Time // last activity on the final connection, once gone
}

// AgentStatus is a snapshot of one agent's liveness.
type AgentStatus struct {
	Kind, Name string
	Liveness   Liveness
	// LastSeen is the last frame read from the agent (heartbeats count).
	LastSeen time.Time
	// Connects counts completed hellos; >1 means the agent reconnected.
	Connects int
	// Resyncs counts policy replays after stale re-hellos; DeltaResyncs and
	// FullResyncs split the structural transactions those replays ran by
	// mode (an op-log delta vs a full policy replay). ResyncErr holds the
	// error of the last failed replay ("" when healthy).
	Resyncs      int
	DeltaResyncs int
	FullResyncs  int
	ResyncErr    string
	// Generation is the agent's last known pipeline generation;
	// IntendedGeneration is the generation of the controller's last
	// committed policy for it (0 if none).
	Generation         uint64
	IntendedGeneration uint64
	// GlobalsSeq is the highest recorded-global sequence the agent is
	// known to hold; IntendedGlobalsSeq is the store's current high-water
	// mark. Generation alone converges when the structural transaction
	// commits, which is before the globals replay — an agent holds the
	// full intended policy only once both pairs match.
	GlobalsSeq         uint64
	IntendedGlobalsSeq uint64
}

func (c *Controller) statusLocked(st *agentState) AgentStatus {
	s := AgentStatus{
		Kind: st.kind, Name: st.name,
		Connects: st.connects, Resyncs: st.resyncs,
		DeltaResyncs: st.deltaResyncs, FullResyncs: st.fullResyncs,
		ResyncErr:  st.resyncErr,
		Generation: st.generation,
		GlobalsSeq: st.globalsSeq,
	}
	if pol, ok := c.policies.get(st.name); ok && st.kind == "enclave" {
		s.IntendedGeneration = pol.Generation
		s.IntendedGlobalsSeq = c.policies.globalSeqOf(st.name)
	}
	if st.peer == nil {
		s.Liveness = Gone
		s.LastSeen = st.lastSeen
		return s
	}
	s.LastSeen = st.peer.LastActivity()
	if hello := st.lastHello; hello.After(s.LastSeen) {
		s.LastSeen = hello
	}
	if time.Since(s.LastSeen) > c.degradedAfter {
		s.Liveness = Degraded
	} else {
		s.Liveness = Connected
	}
	return s
}

// AgentStatus reports the liveness of the named agent (enclave or stage).
// Agents that registered at least once stay visible after disconnecting,
// with Liveness Gone.
func (c *Controller) AgentStatus(name string) (AgentStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, kind := range []string{"enclave", "stage"} {
		if st, ok := c.status[statusKey(kind, name)]; ok {
			return c.statusLocked(st), true
		}
	}
	return AgentStatus{}, false
}

// noteGeneration updates the tracked generation for an agent after an
// operation that changed it (a committed transaction).
func (c *Controller) noteGeneration(kind, name string, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.status[statusKey(kind, name)]; ok {
		st.generation = gen
	}
}

// noteGlobalSeq advances the named enclave's confirmed-globals cursor
// after a global push landed on the live agent (cursors only move
// forward; a concurrent resync replaying an older snapshot must not
// rewind it).
func (c *Controller) noteGlobalSeq(name string, seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.status[statusKey("enclave", name)]; ok && seq > st.globalsSeq {
		st.globalsSeq = seq
	}
}

// epochOf returns the boot epoch the named enclave reported in its latest
// hello (0 if unknown).
func (c *Controller) epochOf(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.status[statusKey("enclave", name)]; ok {
		return st.epoch
	}
	return 0
}

// AgentStatuses snapshots every known agent's liveness.
func (c *Controller) AgentStatuses() []AgentStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]AgentStatus, 0, len(c.status))
	for _, st := range c.status {
		out = append(out, c.statusLocked(st))
	}
	return out
}

// RemoteEnclave is the controller's proxy for one registered enclave,
// exposing the enclave API (§3.4.5) over the control channel.
type RemoteEnclave struct {
	Name     string
	Host     string
	Platform string
	peer     *ctlproto.Peer
	ctl      *Controller // for policy recording; nil in bare tests

	// Policy recording: while a transaction is open, successful structural
	// ops accumulate in txLog; a successful TxCommit stores them (plus the
	// resulting generation) as the agent's intended policy.
	txMu   sync.Mutex
	txOpen bool
	txLog  []PolicyOp
}

// callStructural issues a pipeline-structure op, recording it while a
// transaction is open.
func (e *RemoteEnclave) callStructural(op string, params any) error {
	if err := e.peer.Call(op, params, nil); err != nil {
		return err
	}
	if e.ctl != nil {
		e.txMu.Lock()
		if e.txOpen {
			if raw, err := json.Marshal(params); err == nil {
				e.txLog = append(e.txLog, PolicyOp{Op: op, Params: raw})
			}
		}
		e.txMu.Unlock()
	}
	return nil
}

// callGlobal pushes function state, recording the newest value per
// (op, func, name) for replay after a policy re-sync.
func (e *RemoteEnclave) callGlobal(op string, p ctlproto.GlobalParams) error {
	if err := e.peer.Call(op, p, nil); err != nil {
		return err
	}
	if e.ctl != nil {
		if raw, err := json.Marshal(p); err == nil {
			seq := e.ctl.policies.recordGlobal(e.Name, op+"/"+p.Func+"/"+p.Name, p.Func, PolicyOp{Op: op, Params: raw})
			e.ctl.noteGlobalSeq(e.Name, seq)
		}
	}
	return nil
}

// CreateTable creates a match-action table.
func (e *RemoteEnclave) CreateTable(dir enclave.Direction, table string) error {
	return e.callStructural(ctlproto.OpEnclaveCreateTable, ctlproto.TableParams{Dir: int(dir), Table: table})
}

// DeleteTable removes a table.
func (e *RemoteEnclave) DeleteTable(dir enclave.Direction, table string) error {
	return e.callStructural(ctlproto.OpEnclaveDeleteTable, ctlproto.TableParams{Dir: int(dir), Table: table})
}

// AddRule appends a match-action rule.
func (e *RemoteEnclave) AddRule(dir enclave.Direction, table, pattern, fn string) error {
	return e.callStructural(ctlproto.OpEnclaveAddRule,
		ctlproto.RuleParams{Dir: int(dir), Table: table, Pattern: pattern, Func: fn})
}

// RemoveRule removes a rule by pattern.
func (e *RemoteEnclave) RemoveRule(dir enclave.Direction, table, pattern string) error {
	return e.callStructural(ctlproto.OpEnclaveRemoveRule,
		ctlproto.RuleParams{Dir: int(dir), Table: table, Pattern: pattern})
}

// Install ships a compiled action function to the enclave.
func (e *RemoteEnclave) Install(f *compiler.Func) error {
	return e.callStructural(ctlproto.OpEnclaveInstall, ctlproto.ToSpec(f))
}

// Uninstall removes a function and its rules.
func (e *RemoteEnclave) Uninstall(name string) error {
	return e.callStructural(ctlproto.OpEnclaveUninstall, ctlproto.GlobalParams{Func: name})
}

// UpdateGlobal pushes a global scalar.
func (e *RemoteEnclave) UpdateGlobal(fn, name string, v int64) error {
	return e.callGlobal(ctlproto.OpEnclaveUpdateGlobal,
		ctlproto.GlobalParams{Func: fn, Name: name, Value: v})
}

// UpdateGlobalArray pushes a global array.
func (e *RemoteEnclave) UpdateGlobalArray(fn, name string, vs []int64) error {
	return e.callGlobal(ctlproto.OpEnclaveUpdateArray,
		ctlproto.GlobalParams{Func: fn, Name: name, Values: vs})
}

// ReadGlobal reads a global scalar back.
func (e *RemoteEnclave) ReadGlobal(fn, name string) (int64, error) {
	var out struct {
		Value int64 `json:"value"`
	}
	err := e.peer.Call(ctlproto.OpEnclaveReadGlobal, ctlproto.GlobalParams{Func: fn, Name: name}, &out)
	return out.Value, err
}

// ReadGlobalArray reads a global array back.
func (e *RemoteEnclave) ReadGlobalArray(fn, name string) ([]int64, error) {
	var out struct {
		Values []int64 `json:"values"`
	}
	err := e.peer.Call(ctlproto.OpEnclaveReadArray, ctlproto.GlobalParams{Func: fn, Name: name}, &out)
	return out.Values, err
}

// Stats fetches the enclave's counters.
func (e *RemoteEnclave) Stats() (enclave.Stats, error) {
	var out enclave.Stats
	err := e.peer.Call(ctlproto.OpEnclaveStats, nil, &out)
	return out, err
}

// AddQueue creates a rate-limited queue, returning its index.
func (e *RemoteEnclave) AddQueue(rateBps, capBytes int64) (int, error) {
	var out struct {
		Index int `json:"index"`
	}
	err := e.peer.Call(ctlproto.OpEnclaveAddQueue,
		ctlproto.QueueParams{RateBps: rateBps, CapBytes: capBytes}, &out)
	return out.Index, err
}

// SetQueueRate reconfigures a queue's drain rate.
func (e *RemoteEnclave) SetQueueRate(idx int, rateBps int64) error {
	return e.peer.Call(ctlproto.OpEnclaveSetQueueRate,
		ctlproto.QueueParams{Index: idx, RateBps: rateBps}, nil)
}

// AddFlowRule installs a five-tuple classifier rule on the enclave.
func (e *RemoteEnclave) AddFlowRule(r ctlproto.FlowRuleParams) error {
	return e.peer.Call(ctlproto.OpEnclaveAddFlowRule, r, nil)
}

// TxBegin opens a policy transaction on the enclave agent. Subsequent
// structural mutations (tables, rules, installs, uninstalls) are staged
// and become visible to the data path atomically at TxCommit.
func (e *RemoteEnclave) TxBegin() error {
	if err := e.peer.Call(ctlproto.OpEnclaveTxBegin, nil, nil); err != nil {
		return err
	}
	e.txMu.Lock()
	e.txOpen = true
	e.txLog = nil
	e.txMu.Unlock()
	return nil
}

// TxCommit atomically publishes the staged transaction, returning the new
// pipeline generation. On error (including failed bytecode verification of
// any staged function) nothing is published. A successful commit records
// the transaction's ops and generation as the enclave's intended policy,
// the baseline for re-sync after a reconnect with a stale generation.
func (e *RemoteEnclave) TxCommit() (uint64, error) {
	var out ctlproto.TxResult
	err := e.peer.Call(ctlproto.OpEnclaveTxCommit, nil, &out)
	e.txMu.Lock()
	log := e.txLog
	wasOpen := e.txOpen
	e.txOpen = false
	e.txLog = nil
	e.txMu.Unlock()
	if err != nil {
		return 0, err
	}
	if e.ctl != nil && wasOpen {
		e.ctl.policies.commit(e.Name, out.Generation, e.ctl.epochOf(e.Name), log)
		e.ctl.noteGeneration("enclave", e.Name, out.Generation)
	}
	return out.Generation, nil
}

// TxAbort discards the staged transaction without publishing anything.
func (e *RemoteEnclave) TxAbort() error {
	e.txMu.Lock()
	e.txOpen = false
	e.txLog = nil
	e.txMu.Unlock()
	return e.peer.Call(ctlproto.OpEnclaveTxAbort, nil, nil)
}

// Generation reads the enclave's currently published pipeline generation.
func (e *RemoteEnclave) Generation() (uint64, error) {
	var out ctlproto.TxResult
	err := e.peer.Call(ctlproto.OpEnclaveGeneration, nil, &out)
	return out.Generation, err
}

// SetTrace stamps subsequent calls to this enclave with a telemetry trace
// id (0 clears it); TraceID reads the current one. The id travels in
// every request frame, so agent- and enclave-side spans join the chain.
func (e *RemoteEnclave) SetTrace(id uint64) { e.peer.SetTrace(id) }

// TraceID returns the trace id currently stamped onto calls.
func (e *RemoteEnclave) TraceID() uint64 { return e.peer.Trace() }

// FetchSpans retrieves the agent's recorded control-plane spans (all of
// them when trace is 0).
func (e *RemoteEnclave) FetchSpans(trace uint64) ([]telemetry.Span, error) {
	var out []telemetry.Span
	err := e.peer.Call(ctlproto.OpTelemetrySpans, ctlproto.SpanParams{Trace: trace}, &out)
	return out, err
}

// SpanDump merges the controller's own spans with those fetched from
// every connected enclave agent, filtered to one trace (0 = all) and
// sorted for chain reconstruction. Agents that fail to answer are
// skipped — a dump must not fail because one agent is wedged.
func (c *Controller) SpanDump(trace uint64) []telemetry.Span {
	spans := c.spans.SpansFor(trace)
	c.mu.Lock()
	enclaves := make([]*RemoteEnclave, 0, len(c.enclaves))
	for _, e := range c.enclaves {
		enclaves = append(enclaves, e)
	}
	c.mu.Unlock()
	for _, e := range enclaves {
		remote, err := e.FetchSpans(trace)
		if err != nil {
			c.log().Warn("span fetch failed",
				"component", "controller", "agent", e.Name, "err", err)
			continue
		}
		spans = append(spans, remote...)
	}
	telemetry.SortSpans(spans)
	return spans
}

// RemoteStage is the controller's proxy for one registered stage,
// exposing the stage API (Table 3).
type RemoteStage struct {
	Name string
	Host string
	peer *ctlproto.Peer
}

// StageInfo mirrors stage.Info for transport.
type StageInfo struct {
	Name        string   `json:"name"`
	Classifiers []string `json:"classifiers"`
	MetaFields  []string `json:"meta_fields"`
	RuleSets    []string `json:"rule_sets"`
}

// Info implements getStageInfo (S0).
func (s *RemoteStage) Info() (StageInfo, error) {
	var out StageInfo
	err := s.peer.Call(ctlproto.OpStageInfo, nil, &out)
	return out, err
}

// CreateRule implements createStageRule (S1); rule text uses Figure 6's
// syntax. It returns the rule identifier.
func (s *RemoteStage) CreateRule(ruleSet, rule string) (int, error) {
	var out struct {
		RuleID int `json:"rule_id"`
	}
	err := s.peer.Call(ctlproto.OpStageCreateRule,
		ctlproto.StageRuleParams{RuleSet: ruleSet, Rule: rule}, &out)
	return out.RuleID, err
}

// RemoveRule implements removeStageRule (S2).
func (s *RemoteStage) RemoveRule(ruleSet string, id int) error {
	return s.peer.Call(ctlproto.OpStageRemoveRule,
		ctlproto.StageRuleParams{RuleSet: ruleSet, RuleID: id}, nil)
}
