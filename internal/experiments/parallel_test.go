package experiments

import (
	"fmt"
	"sync/atomic"
	"testing"

	"eden/internal/netsim"
)

// TestForEachTrialCoversAllIndices checks the worker pool visits every
// trial exactly once, at several pool sizes.
func TestForEachTrialCoversAllIndices(t *testing.T) {
	defer SetParallelism(0)
	for _, par := range []int{1, 2, 8} {
		SetParallelism(par)
		const n = 37
		var hits [n]atomic.Int32
		forEachTrial(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("parallelism %d: trial %d ran %d times, want 1", par, i, got)
			}
		}
	}
}

// TestForEachTrialPanicPropagates checks a panicking trial surfaces in the
// caller rather than crashing a worker goroutine.
func TestForEachTrialPanicPropagates(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	defer func() {
		if r := recover(); r == nil {
			t.Error("panic in a trial did not propagate")
		}
	}()
	forEachTrial(8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

// TestSetParallelism checks the bounds behaviour: non-positive resets to
// the CPU-count default.
func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Errorf("Parallelism() = %d, want 3", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Errorf("Parallelism() after reset = %d, want >= 1", got)
	}
}

// TestParallelDeterminism is the tentpole's correctness guarantee: at a
// fixed seed the rendered fig9/fig10/fig11 output is byte-identical
// whether trials run serially or on an 8-worker pool, because every trial
// owns its simulator and results merge in trial order.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	defer SetParallelism(0)

	render := func() map[string]string {
		cfg9 := DefaultFig9Config()
		cfg9.Runs = 2
		cfg9.Duration = 30 * netsim.Millisecond
		cfg10 := DefaultFig10Config()
		cfg10.Runs = 2
		cfg10.Duration = 40 * netsim.Millisecond
		cfg11 := DefaultFig11Config()
		cfg11.Runs = 2
		cfg11.Duration = 60 * netsim.Millisecond
		return map[string]string{
			"fig9":  RunFig9(cfg9).String(),
			"fig10": RunFig10(cfg10).String(),
			"fig11": RunFig11(cfg11).String(),
		}
	}

	SetParallelism(1)
	serial := render()
	SetParallelism(8)
	parallel := render()

	for name, want := range serial {
		if got := parallel[name]; got != want {
			t.Errorf("%s differs between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s", name, want, got)
		}
	}

	// And a second parallel render must reproduce the first (no hidden
	// shared state across trials).
	again := render()
	for name, want := range parallel {
		if got := again[name]; got != want {
			t.Errorf("%s not reproducible across repeated parallel renders", name)
		}
	}
}

// TestAblationDeterministicAcrossPool does the same for the ablations,
// whose drivers also fan out on the pool.
func TestAblationDeterministicAcrossPool(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	defer SetParallelism(0)
	render := func() string {
		return fmt.Sprintf("%v\n%v",
			RunAblationGranularity(2, 50*netsim.Millisecond),
			RunAblationAttachPoint(50*netsim.Millisecond))
	}
	SetParallelism(1)
	serial := render()
	SetParallelism(8)
	if got := render(); got != serial {
		t.Errorf("ablation output differs between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s", serial, got)
	}
}
