package classify

import (
	"strings"
	"testing"
	"testing/quick"
)

// memcachedClassifier builds the stage of Table 2 with Figure 6's rules.
func memcachedClassifier(t *testing.T) *Classifier {
	t.Helper()
	c := NewClassifier("memcached",
		[]string{"msg_type", "key"},
		[]string{"msg_id", "msg_type", "key", "msg_size"})
	err := c.ParseRules(`
		# Figure 6 rule-sets
		r1: <GET, - > -> [GET, {msg_id, msg_size}]
		r1: <PUT, - > -> [PUT, {msg_id, msg_size}]
		r2: <*, - >   -> [DEFAULT, {msg_id, msg_size}]
		r3: <GET, "a" > -> [GETA, {msg_id, msg_size}]
		r3: <*, "a" >   -> [A, {msg_id, msg_size}]
		r3: <*, * >     -> [OTHER, {msg_id, msg_size}]
	`)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFigure6Classification(t *testing.T) {
	c := memcachedClassifier(t)

	// "a PUT request for key 'a' would be classified as belonging to three
	// classes, memcached.r1.PUT, memcached.r2.DEFAULT, and memcached.r3.A."
	got := c.Classify([]string{"PUT", "a"})
	want := []string{"memcached.r1.PUT", "memcached.r2.DEFAULT", "memcached.r3.A"}
	if len(got) != len(want) {
		t.Fatalf("got %d classifications: %+v", len(got), got)
	}
	for i, w := range want {
		if got[i].Class != w {
			t.Errorf("class %d = %q, want %q", i, got[i].Class, w)
		}
	}

	cases := []struct {
		typ, key string
		r1, r3   string
	}{
		{"GET", "a", "memcached.r1.GET", "memcached.r3.GETA"},
		{"GET", "b", "memcached.r1.GET", "memcached.r3.OTHER"},
		{"PUT", "b", "memcached.r1.PUT", "memcached.r3.OTHER"},
	}
	for _, cse := range cases {
		got := c.Classify([]string{cse.typ, cse.key})
		if len(got) != 3 {
			t.Fatalf("%v: got %d classes", cse, len(got))
		}
		if got[0].Class != cse.r1 {
			t.Errorf("%s/%s r1 = %q, want %q", cse.typ, cse.key, got[0].Class, cse.r1)
		}
		if got[2].Class != cse.r3 {
			t.Errorf("%s/%s r3 = %q, want %q", cse.typ, cse.key, got[2].Class, cse.r3)
		}
	}
}

func TestFirstMatchWins(t *testing.T) {
	c := NewClassifier("s", []string{"f"}, []string{"msg_id"})
	rs := c.RuleSet("r")
	rs.Add(Rule{Match: []Pattern{{Value: "x"}}, Class: "X"})
	rs.Add(Rule{Match: []Pattern{{Any: true}}, Class: "ANY"})

	if got := rs.Match([]string{"x"}); got == nil || got.Class != "X" {
		t.Errorf("match x = %+v", got)
	}
	if got := rs.Match([]string{"y"}); got == nil || got.Class != "ANY" {
		t.Errorf("match y = %+v", got)
	}
}

func TestNoMatch(t *testing.T) {
	c := NewClassifier("s", []string{"f"}, nil)
	c.RuleSet("r").Add(Rule{Match: []Pattern{{Value: "only"}}, Class: "O"})
	if got := c.Classify([]string{"other"}); len(got) != 0 {
		t.Errorf("classify miss = %+v", got)
	}
}

func TestRuleRemove(t *testing.T) {
	c := NewClassifier("s", []string{"f"}, nil)
	rs := c.RuleSet("r")
	id1 := rs.Add(Rule{Match: []Pattern{{Value: "a"}}, Class: "A"})
	id2 := rs.Add(Rule{Match: []Pattern{{Value: "b"}}, Class: "B"})
	if id1 == id2 {
		t.Fatal("rule ids not unique")
	}
	if !rs.Remove(id1) {
		t.Fatal("remove failed")
	}
	if rs.Remove(id1) {
		t.Fatal("double remove succeeded")
	}
	if got := rs.Match([]string{"a"}); got != nil {
		t.Errorf("removed rule still matches: %+v", got)
	}
	if got := rs.Match([]string{"b"}); got == nil || got.ID != id2 {
		t.Errorf("surviving rule broken: %+v", got)
	}
}

func TestAddRuleValidation(t *testing.T) {
	c := NewClassifier("s", []string{"f1", "f2"}, []string{"msg_id"})
	if _, err := c.AddRule("r", Rule{Match: make([]Pattern, 3), Class: "X"}); err == nil {
		t.Error("accepted too many patterns")
	}
	if _, err := c.AddRule("r", Rule{Class: ""}); err == nil {
		t.Error("accepted empty class")
	}
	if _, err := c.AddRule("r", Rule{Class: "X", Meta: []string{"undeclared"}}); err == nil {
		t.Error("accepted undeclared metadata")
	}
	if _, err := c.AddRule("r", Rule{Class: "X", Meta: []string{"msg_id"}}); err != nil {
		t.Errorf("rejected valid rule: %v", err)
	}
}

func TestParseRule(t *testing.T) {
	r, err := ParseRule(`<GET, "a b"> -> [GETA, {msg_id, msg_size}]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Match) != 2 || r.Match[0].Any || r.Match[0].Value != "GET" {
		t.Errorf("pattern 0: %+v", r.Match)
	}
	if r.Match[1].Value != "a b" {
		t.Errorf("quoted pattern: %+v", r.Match[1])
	}
	if r.Class != "GETA" || len(r.Meta) != 2 || r.Meta[1] != "msg_size" {
		t.Errorf("rule: %+v", r)
	}

	// No metadata block.
	r, err = ParseRule(`<*> -> [ALL]`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match[0].Any || r.Class != "ALL" || len(r.Meta) != 0 {
		t.Errorf("rule: %+v", r)
	}

	// Unicode arrow.
	r, err = ParseRule(`<-> → [D, {}]`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Class != "D" {
		t.Errorf("rule: %+v", r)
	}
}

func TestParseRuleErrors(t *testing.T) {
	cases := []string{
		``,
		`GET -> [X]`,
		`<GET> [X]`,
		`<GET> -> X`,
		`<GET> -> []`,
		`<GET> -> [X, {a}`,
		`<"unterminated> -> [X]`,
		`<,> -> [X]`,
	}
	for _, s := range cases {
		if _, err := ParseRule(s); err == nil {
			t.Errorf("ParseRule(%q) succeeded", s)
		}
	}
}

func TestParseRulesErrors(t *testing.T) {
	c := NewClassifier("s", []string{"f"}, nil)
	if err := c.ParseRules("no colon here"); err == nil {
		t.Error("accepted line without ruleset prefix")
	}
	if err := c.ParseRules("r: <bad"); err == nil {
		t.Error("accepted malformed rule")
	}
	if err := c.ParseRules("r: <a, b> -> [X]"); err == nil {
		t.Error("accepted too many patterns")
	}
}

func TestQualifiedClassSplit(t *testing.T) {
	q := QualifiedClass("memcached", "r1", "GET")
	if q != "memcached.r1.GET" {
		t.Errorf("QualifiedClass = %q", q)
	}
	s, rs, cl, ok := SplitClass(q)
	if !ok || s != "memcached" || rs != "r1" || cl != "GET" {
		t.Errorf("SplitClass = %q %q %q %v", s, rs, cl, ok)
	}
	for _, bad := range []string{"", "a", "a.b", "a.b.", ".b.c", "a..c"} {
		if _, _, _, ok := SplitClass(bad); ok {
			t.Errorf("SplitClass(%q) ok", bad)
		}
	}
	// Class part may itself contain dots.
	_, _, cl, ok = SplitClass("a.b.c.d")
	if !ok || cl != "c.d" {
		t.Errorf("SplitClass nested = %q %v", cl, ok)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Match: []Pattern{{Value: "GET"}, {Any: true}, {Value: "has space"}},
		Class: "X", Meta: []string{"msg_id"},
	}
	s := r.String()
	for _, want := range []string{"GET", "*", `"has space"`, "[X", "{msg_id}"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	// String output must re-parse to an equivalent rule.
	r2, err := ParseRule(s)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(r2.Match) != 3 || r2.Match[2].Value != "has space" || r2.Class != "X" {
		t.Errorf("reparse mismatch: %+v", r2)
	}
}

// Property: for any value set, each rule-set yields at most one class, and
// adding a trailing catch-all makes classification total.
func TestQuickClassifyTotality(t *testing.T) {
	c := NewClassifier("s", []string{"f1", "f2"}, nil)
	rs := c.RuleSet("r")
	rs.Add(Rule{Match: []Pattern{{Value: "a"}, {Value: "b"}}, Class: "AB"})
	rs.Add(Rule{Match: []Pattern{{Value: "a"}}, Class: "A"})
	rs.Add(Rule{Match: []Pattern{{Any: true}, {Any: true}}, Class: "ALL"})

	f := func(v1, v2 string) bool {
		got := c.Classify([]string{v1, v2})
		if len(got) != 1 {
			return false
		}
		switch {
		case v1 == "a" && v2 == "b":
			return got[0].Class == "s.r.AB"
		case v1 == "a":
			return got[0].Class == "s.r.A"
		default:
			return got[0].Class == "s.r.ALL"
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkClassify(b *testing.B) {
	c := NewClassifier("memcached",
		[]string{"msg_type", "key"},
		[]string{"msg_id", "msg_size"})
	if err := c.ParseRules(`
		r1: <GET, -> -> [GET, {msg_id, msg_size}]
		r1: <PUT, -> -> [PUT, {msg_id, msg_size}]
		r2: <*, ->   -> [DEFAULT, {msg_id}]
	`); err != nil {
		b.Fatal(err)
	}
	vals := []string{"PUT", "somekey"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := c.Classify(vals); len(got) != 2 {
			b.Fatal("bad classification")
		}
	}
}
