// Package metrics is the data-path observability substrate: atomic
// counters, gauges and fixed-bucket histograms, grouped into named
// registries with cheap snapshot/diff. Every instrumented layer (enclave,
// netsim links and switches, transport, qos queues) exposes its counters
// through a registry so experiments and tools can dump one JSON document
// covering the whole data path instead of poking at per-package structs.
//
// Hot-path cost is one atomic add per update; metric lookup by name only
// happens at registration time, so components cache *Counter/*Gauge
// pointers. All types are safe for concurrent use.
package metrics

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// valid and ignores updates, so conditionally instrumented components can
// cache a nil pointer instead of branching at every update site.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, backlog bytes).
// Like Counter, a nil *Gauge ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// SetMax raises the gauge to n if n is larger (high-water marks).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: values are counted into the
// first bucket whose upper bound is >= the observation, with an implicit
// overflow bucket past the last bound.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Int64
}

// LatencyBucketsNs is a general-purpose set of nanosecond latency bounds
// (100ns .. 1ms) for interpreter and queueing latencies.
var LatencyBucketsNs = []int64{100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. A nil *Histogram ignores it.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot returns a copy of the histogram's state, including p50/p90/p99
// estimates so latency histograms are readable in dumps without bucket
// arithmetic.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.fillQuantiles()
	return s
}

// HistogramSnapshot is the JSON-friendly frozen form of a Histogram. The
// last count is the overflow bucket (observations above every bound).
// P50/P90/P99 are interpolated quantile estimates (see Quantile).
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`

	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// Quantile estimates the q-quantile (0 < q <= 1) by locating the bucket
// containing the target rank and interpolating linearly inside it, the
// same estimator Prometheus applies to histogram buckets. Observations in
// the overflow bucket are reported as the highest finite bound (there is
// no upper edge to interpolate toward); an empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c <= 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: clamp to the largest finite bound.
			if len(s.Bounds) == 0 {
				return 0
			}
			return float64(s.Bounds[len(s.Bounds)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(s.Bounds[i-1])
		}
		hi := float64(s.Bounds[i])
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

func (s *HistogramSnapshot) fillQuantiles() {
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
}

// Registry is a named group of metrics. Counters, gauges and histograms
// are created on first use and live for the registry's lifetime.
type Registry struct {
	name string

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry with the given name.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:       name,
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Name returns the registry's name.
func (r *Registry) Name() string { return r.name }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds if needed (bounds are ignored on later lookups).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot freezes every metric in the registry.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RegistrySnapshot{Name: r.name}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Load()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for n, h := range r.histograms {
			s.Histograms[n] = h.Snapshot()
		}
	}
	return s
}

// RegistrySnapshot is one registry's metrics at a point in time. Agent,
// when set, names the process the snapshot came from — the controller's
// fleet rollups label each agent's registries with it, and Prometheus
// exposition emits it as an agent="..." label.
type RegistrySnapshot struct {
	Name       string                       `json:"name"`
	Agent      string                       `json:"agent,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Diff returns this snapshot minus an earlier one: counters and histogram
// counts are subtracted, gauges keep their current value. Metrics absent
// from prev — including metrics registered only after the baseline was
// taken — pass through at their full value rather than vanishing, so a
// late-created queue or registry still shows up in interval series. The
// result shares no maps with either input.
func (s RegistrySnapshot) Diff(prev RegistrySnapshot) RegistrySnapshot {
	out := RegistrySnapshot{Name: s.Name, Agent: s.Agent}
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]int64, len(s.Counters))
		for n, v := range s.Counters {
			out.Counters[n] = v - prev.Counters[n]
		}
	}
	if len(s.Gauges) > 0 {
		out.Gauges = make(map[string]int64, len(s.Gauges))
		for n, v := range s.Gauges {
			out.Gauges[n] = v
		}
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for n, h := range s.Histograms {
			p, ok := prev.Histograms[n]
			if !ok || len(p.Counts) != len(h.Counts) || !boundsEqual(p.Bounds, h.Bounds) {
				out.Histograms[n] = h
				continue
			}
			d := HistogramSnapshot{
				Bounds: h.Bounds,
				Counts: make([]int64, len(h.Counts)),
				Count:  h.Count - p.Count,
				Sum:    h.Sum - p.Sum,
			}
			for i := range h.Counts {
				d.Counts[i] = h.Counts[i] - p.Counts[i]
			}
			d.fillQuantiles()
			out.Histograms[n] = d
		}
	}
	return out
}

// Merge folds another histogram's observations into s: bucket counts,
// count and sum are added and the quantile estimates recomputed. An empty
// s adopts o's shape (deep-copied, so the inputs stay unshared). It
// reports false — leaving s unchanged — when both histograms are
// populated but their bucket bounds disagree: summing counts across
// different bucket layouts would fabricate a distribution.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) bool {
	if o.Count == 0 && len(o.Counts) == 0 {
		return true
	}
	if len(s.Counts) == 0 {
		s.Bounds = append([]int64(nil), o.Bounds...)
		s.Counts = append([]int64(nil), o.Counts...)
		s.Count, s.Sum = o.Count, o.Sum
		s.fillQuantiles()
		return true
	}
	if len(s.Counts) != len(o.Counts) || !boundsEqual(s.Bounds, o.Bounds) {
		return false
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	s.fillQuantiles()
	return true
}

// Merge folds another registry snapshot into s, keyed by metric name:
// counters and gauges are summed, histograms merged bucket-wise (see
// HistogramSnapshot.Merge). A histogram whose bounds disagree with the
// accumulated one replaces it — the newer layout wins over a stale mix —
// so a fleet rollup degrades to last-writer rather than corrupting
// counts. s's maps are created on demand; o is never mutated.
func (s *RegistrySnapshot) Merge(o RegistrySnapshot) {
	if len(o.Counters) > 0 && s.Counters == nil {
		s.Counters = make(map[string]int64, len(o.Counters))
	}
	for n, v := range o.Counters {
		s.Counters[n] += v
	}
	if len(o.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = make(map[string]int64, len(o.Gauges))
	}
	for n, v := range o.Gauges {
		s.Gauges[n] += v
	}
	if len(o.Histograms) > 0 && s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot, len(o.Histograms))
	}
	for n, h := range o.Histograms {
		acc := s.Histograms[n]
		if !acc.Merge(h) {
			acc = HistogramSnapshot{
				Bounds: append([]int64(nil), h.Bounds...),
				Counts: append([]int64(nil), h.Counts...),
				Count:  h.Count, Sum: h.Sum,
			}
			acc.fillQuantiles()
		}
		s.Histograms[n] = acc
	}
}

func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Set is a collection of snapshot sources — live registries plus
// on-demand providers (layers that keep plain structs, like the transport
// stack, contribute a snapshot function). The zero value is ready to use.
type Set struct {
	mu      sync.Mutex
	sources []func() RegistrySnapshot
	multi   []func() []RegistrySnapshot
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// Add registers a live registry with the set.
func (s *Set) Add(r *Registry) {
	s.AddSource(r.Snapshot)
}

// AddSource registers a snapshot provider with the set.
func (s *Set) AddSource(fn func() RegistrySnapshot) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.sources = append(s.sources, fn)
	s.mu.Unlock()
}

// AddMultiSource registers a provider contributing a variable number of
// snapshots per call — the shape of a fleet rollup, where one controller
// holds many agents' registries.
func (s *Set) AddMultiSource(fn func() []RegistrySnapshot) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.multi = append(s.multi, fn)
	s.mu.Unlock()
}

// Reset drops every registered source. A long-lived set (one backing a
// live ops endpoint across several experiment runs) calls this between
// runs so stale registries don't accumulate.
func (s *Set) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.sources = nil
	s.multi = nil
	s.mu.Unlock()
}

// Snapshot freezes every source, sorted by registry name (then by agent
// for fleet rollups, where many agents expose same-named registries).
func (s *Set) Snapshot() []RegistrySnapshot {
	s.mu.Lock()
	sources := append([]func() RegistrySnapshot(nil), s.sources...)
	multi := append([]func() []RegistrySnapshot(nil), s.multi...)
	s.mu.Unlock()
	out := make([]RegistrySnapshot, 0, len(sources))
	for _, fn := range sources {
		out = append(out, fn())
	}
	for _, fn := range multi {
		out = append(out, fn()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Agent < out[j].Agent
	})
	return out
}

// JSON renders the set's snapshot as indented JSON.
func (s *Set) JSON() ([]byte, error) {
	return json.MarshalIndent(s.Snapshot(), "", "  ")
}
