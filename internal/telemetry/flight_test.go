package telemetry

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"eden/internal/metrics"
)

func TestFlightRecorderDeltasAndSum(t *testing.T) {
	set := metrics.NewSet()
	reg := metrics.NewRegistry("link")
	set.Add(reg)
	tx := reg.Counter("tx_packets")
	depth := reg.Gauge("queue_depth")

	f := NewFlightRecorder(set, 10)
	tx.Add(5)
	depth.Set(3)
	f.Tick(10)
	tx.Add(7)
	depth.Set(1)
	f.Tick(20)
	tx.Add(2)
	f.Finish(25) // partial final interval

	samples := f.Samples()
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	wantDeltas := []int64{5, 7, 2}
	wantGauges := []int64{3, 1, 1}
	for i, s := range samples {
		if got := s.Counters["link/tx_packets"]; got != wantDeltas[i] {
			t.Errorf("sample %d delta = %d, want %d", i, got, wantDeltas[i])
		}
		if got := s.Gauges["link/queue_depth"]; got != wantGauges[i] {
			t.Errorf("sample %d gauge = %d, want %d", i, got, wantGauges[i])
		}
	}

	// Summed deltas reproduce the terminal snapshot exactly.
	sums := f.SumCounters()
	if got := sums["link/tx_packets"]; got != 14 {
		t.Errorf("summed deltas = %d, want 14", got)
	}
	if err := f.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
}

// TestFlightRecorderLateRegistry: a registry added after sampling started
// enters the series at its full value rather than vanishing, so summed
// deltas still match the terminal snapshot.
func TestFlightRecorderLateRegistry(t *testing.T) {
	set := metrics.NewSet()
	reg := metrics.NewRegistry("early")
	set.Add(reg)
	early := reg.Counter("ops")

	f := NewFlightRecorder(set, 10)
	early.Add(1)
	f.Tick(10)

	late := metrics.NewRegistry("late")
	set.Add(late)
	lc := late.Counter("ops")
	lc.Add(9)
	early.Add(1)
	f.Tick(20)

	sums := f.SumCounters()
	if got := sums["early/ops"]; got != 2 {
		t.Errorf("early/ops = %d, want 2", got)
	}
	if got := sums["late/ops"]; got != 9 {
		t.Errorf("late/ops = %d, want 9 (late registry dropped from series)", got)
	}
}

// TestFlightRecorderLateMetric: a counter that first increments after the
// baseline sample still shows its full count across the series.
func TestFlightRecorderLateMetric(t *testing.T) {
	set := metrics.NewSet()
	reg := metrics.NewRegistry("r")
	set.Add(reg)
	a := reg.Counter("a")

	f := NewFlightRecorder(set, 10)
	a.Add(1)
	f.Tick(10)
	b := reg.Counter("b") // registered mid-run
	b.Add(4)
	f.Tick(20)

	sums := f.SumCounters()
	if got := sums["r/b"]; got != 4 {
		t.Errorf("r/b = %d, want 4 (late metric dropped)", got)
	}
}

func TestFlightRecorderDuplicateAndBackwardTicks(t *testing.T) {
	set := metrics.NewSet()
	reg := metrics.NewRegistry("r")
	set.Add(reg)
	c := reg.Counter("c")

	f := NewFlightRecorder(set, 10)
	c.Add(1)
	f.Tick(10)
	f.Tick(10) // duplicate: ignored
	f.Tick(5)  // backward: ignored
	c.Add(1)
	f.Finish(10) // Finish racing the final tick: ignored too
	if got := len(f.Samples()); got != 1 {
		t.Fatalf("samples = %d, want 1", got)
	}
	if err := f.Check(); err != nil {
		t.Errorf("Check after duplicate ticks: %v", err)
	}
}

// TestFlightRecorderSkipsIdleMetrics: counters with no delta and
// histograms with no interval activity are omitted from the sample;
// gauges are always present (an unchanged gauge is still a value).
func TestFlightRecorderSkipsIdleMetrics(t *testing.T) {
	set := metrics.NewSet()
	reg := metrics.NewRegistry("r")
	set.Add(reg)
	busy := reg.Counter("busy")
	reg.Counter("idle")
	g := reg.Gauge("depth")
	h := reg.Histogram("lat", []int64{10, 100})

	f := NewFlightRecorder(set, 10)
	busy.Add(1)
	g.Set(5)
	h.Observe(50)
	f.Tick(10)
	busy.Add(2) // histogram and idle counter untouched this interval
	f.Tick(20)

	samples := f.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	for i, s := range samples {
		if _, ok := s.Counters["r/idle"]; ok {
			t.Errorf("sample %d carries zero-delta counter r/idle", i)
		}
		if got := s.Gauges["r/depth"]; got != 5 {
			t.Errorf("sample %d gauge = %d, want 5 (gauges always recorded)", i, got)
		}
	}
	if h := samples[0].Histograms["r/lat"]; h.Count != 1 {
		t.Errorf("first interval hist count = %d, want 1", h.Count)
	}
	if _, ok := samples[1].Histograms["r/lat"]; ok {
		t.Error("idle histogram recorded in second interval")
	}
	if got := f.SumCounters()["r/busy"]; got != 3 {
		t.Errorf("summed busy = %d, want 3", got)
	}
}

// TestFlightRecorderHistogramDeltaQuantiles: per-interval quantiles come
// from the interval's observations alone, not the cumulative state.
func TestFlightRecorderHistogramDeltaQuantiles(t *testing.T) {
	set := metrics.NewSet()
	reg := metrics.NewRegistry("r")
	set.Add(reg)
	h := reg.Histogram("lat", []int64{10, 100, 1000})

	f := NewFlightRecorder(set, 10)
	for i := 0; i < 100; i++ {
		h.Observe(5) // first interval entirely in the lowest bucket
	}
	f.Tick(10)
	for i := 0; i < 100; i++ {
		h.Observe(500) // second interval entirely in the (100,1000] bucket
	}
	f.Tick(20)

	samples := f.Samples()
	h1 := samples[1].Histograms["r/lat"]
	if h1.Count != 100 || h1.Sum != 50_000 {
		t.Fatalf("interval delta = count %d sum %d, want 100/50000", h1.Count, h1.Sum)
	}
	if h1.P50 <= 100 || h1.P50 > 1000 {
		t.Errorf("interval p50 = %g, want inside (100,1000] — cumulative state leaked in", h1.P50)
	}
}

// TestFlightRecorderStartWall drives the recorder from the wall clock.
func TestFlightRecorderStartWall(t *testing.T) {
	set := metrics.NewSet()
	reg := metrics.NewRegistry("r")
	set.Add(reg)
	c := reg.Counter("ops")
	c.Add(1)

	f := NewFlightRecorder(set, int64(time.Millisecond))
	stop := f.StartWall()
	deadline := time.Now().Add(2 * time.Second)
	for len(f.Samples()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Add(2)
	stop()
	stop() // idempotent
	if err := f.Check(); err != nil {
		t.Fatalf("Check after wall-clock run: %v", err)
	}
	if got := f.SumCounters()["r/ops"]; got != 3 {
		t.Errorf("summed ops = %d, want 3 (stop must capture the final partial interval)", got)
	}
}

func TestFlightRecorderCheckEmpty(t *testing.T) {
	f := NewFlightRecorder(metrics.NewSet(), 10)
	if err := f.Check(); err == nil {
		t.Error("Check passed an empty series")
	}
}

// BenchmarkFlightTick ticks a recorder over a 1000-registry set where
// only one registry is active per interval — the at-scale shape ROADMAP
// item 1 calls out. The allocs-per-tick metric doubles as a regression
// gate: the inline diff must not allocate sample entries or key strings
// for idle counters and histograms, so the cost per registry stays at
// the unavoidable Set.Snapshot floor.
func BenchmarkFlightTick(b *testing.B) {
	set := metrics.NewSet()
	const regs = 1000
	var hot *metrics.Counter
	for i := 0; i < regs; i++ {
		r := metrics.NewRegistry(fmt.Sprintf("host.%04d", i))
		for j := 0; j < 8; j++ {
			r.Counter(fmt.Sprintf("c%d", j)).Add(int64(i + j))
		}
		r.Gauge("depth").Set(int64(i))
		r.Histogram("lat_ns", metrics.LatencyBucketsNs).Observe(int64(100 + i))
		set.Add(r)
		if i == 0 {
			hot = r.Counter("c0")
		}
	}
	f := NewFlightRecorder(set, 10)
	var now int64
	tick := func() {
		now += 10
		hot.Inc()
		f.Tick(now)
	}
	tick() // baseline sample: every metric enters at its full value

	allocs := testing.AllocsPerRun(10, tick)
	perReg := allocs / regs

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick()
	}
	b.StopTimer()

	b.ReportMetric(allocs, "allocs/tick")
	b.ReportMetric(perReg, "allocs/registry")
	// Set.Snapshot alone costs ~9 allocations per registry here (snapshot
	// maps plus histogram copies). The old Diff-based sampler added ~14
	// more per registry in intermediate maps and idle-metric key strings.
	if perReg > 12 {
		b.Errorf("flight tick costs %.1f allocs/registry on an idle set, want <= 12 (idle metrics must not allocate)", perReg)
	}
}

func TestFlightRecorderCSVAndJSON(t *testing.T) {
	set := metrics.NewSet()
	reg := metrics.NewRegistry("enclave.h1")
	set.Add(reg)
	c := reg.Counter("packets")
	h := reg.Histogram("interp_ns", []int64{10, 100})

	f := NewFlightRecorder(set, 10)
	c.Add(3)
	h.Observe(50)
	f.Tick(10)
	c.Add(1)
	f.Tick(20)

	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows:\n%s", len(lines), b.String())
	}
	header := lines[0]
	for _, want := range []string{"t_ns", "counter:enclave.h1/packets",
		"hist:enclave.h1/interp_ns.count", "hist:enclave.h1/interp_ns.p99"} {
		if !strings.Contains(header, want) {
			t.Errorf("csv header missing %q: %s", want, header)
		}
	}
	if !strings.HasPrefix(lines[1], "10,") || !strings.HasPrefix(lines[2], "20,") {
		t.Errorf("csv rows not keyed by time:\n%s", b.String())
	}

	out, err := f.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"t": 10`, `"enclave.h1/packets": 3`} {
		if !strings.Contains(string(out), want) {
			t.Errorf("json missing %q:\n%s", want, out)
		}
	}
}
