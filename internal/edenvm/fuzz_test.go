package edenvm

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzLoad drives the wire decoder, verifier and interpreter with
// arbitrary bytes: nothing the controller could ship — malicious or
// corrupted — may panic the enclave, and anything that loads must run to
// halt or trap within its fuel budget.
func FuzzLoad(f *testing.F) {
	seed, err := Assemble(`
		.name seed
		.locals 2
		.state pkt=2 msg=2 glb=2 msgacc=rw glbacc=rw
		ldpkt 0
		store 0
	loop:
		load 0
		jz done
		load 0
		const 1
		sub
		store 0
		jmp loop
	done:
		const 3
		randrange
		stmsg 0
		clock
		stglb 0
		halt`)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Encode())
	f.Add([]byte{})
	f.Add([]byte{0x45, 0x44, 0x45, 0x4e, 1})

	f.Fuzz(func(t *testing.T, wire []byte) {
		p, err := Load(wire)
		if err != nil {
			return
		}
		vm := NewVM()
		vm.Fuel = 4096
		env := &Env{
			Packet: make([]int64, p.State.PacketFields),
			Msg:    make([]int64, p.State.MsgFields),
			Global: make([]int64, p.State.GlobalFields),
			Arrays: [][]int64{{1, 2, 3}, {}},
		}
		_, _ = vm.Run(p, env)
	})
}

// fuzzEnv builds one backend's environment for FuzzDifferential: state
// vectors sized for the program, seeded deterministically so both
// backends start identical, and a private copy of the array pool.
func fuzzEnv(p *Program) *Env {
	env := &Env{
		Packet: make([]int64, p.State.PacketFields),
		Msg:    make([]int64, p.State.MsgFields),
		Global: make([]int64, p.State.GlobalFields),
		Arrays: [][]int64{{1, 2, 3, 4}, {}, {9}},
	}
	for i := range env.Packet {
		env.Packet[i] = int64(i + 1)
	}
	for i := range env.Msg {
		env.Msg[i] = int64(-i)
	}
	for i := range env.Global {
		env.Global[i] = int64(i * 3)
	}
	return env
}

// FuzzDifferential cross-checks the two execution backends: any program
// the controller could ship runs through both the interpreter and the
// closure-compiled form from identical environments, and the observable
// results must agree — halt-vs-trap outcome, the trap itself when both
// trap, and every state mutation (packet, message, global and array
// pool). Fresh NewVM pairs share the default RNG seed and clock counter,
// so rand/clock-using programs stay comparable. The fused fast path
// charges one fuel step per constituent op, so step counts (and hence
// fuel-trap boundaries) also match exactly; the fuel sweep in
// TestCompiledFuelBoundary pins that per-pattern, and asserting the trap
// here keeps the fuzzer sensitive to fuel-accounting drift.
func FuzzDifferential(f *testing.F) {
	for _, src := range []string{
		`
		.name pias
		.locals 1
		.state pkt=3 msg=2 glb=4 msgacc=rw glbacc=rw
		ldpkt 0
		ldmsg 0
		add
		stmsg 0
		ldmsg 0
		const 1000
		lt
		jnz small
		ldglb 1
		const 1
		add
		stglb 1
		const 7
		stpkt 1
		halt
	small:
		const 3
		stpkt 1
		halt`,
		`
		.name loops
		.locals 2
		.state pkt=2 msg=2 glb=2 msgacc=rw glbacc=rw
		ldpkt 0
		store 0
	loop:
		load 0
		jz done
		load 0
		const 1
		sub
		store 0
		jmp loop
	done:
		const 3
		randrange
		stmsg 0
		clock
		stglb 0
		halt`,
		`
		.name arrays
		.locals 1
		.state pkt=2 msg=1 glb=2 msgacc=rw glbacc=rw
		const 0
		const 2
		aload
		stglb 0
		const 0
		const 1
		ldpkt 1
		astore
		ldglb 1
		const 0
		div
		stglb 1
		halt`,
	} {
		p, err := Assemble(src)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p.Encode())
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, wire []byte) {
		p, err := Load(wire)
		if err != nil {
			return
		}
		c, err := Compile(p)
		if err != nil {
			// Load verified the program, so the closure backend must
			// accept it too — a compile failure here is a backend gap the
			// enclave would silently paper over with its fallback.
			t.Fatalf("verified program failed to compile: %v", err)
		}

		const fuel = 4096
		ivm, cvm := NewVM(), NewVM() // identical RNG seed and clock counter
		ivm.Fuel, cvm.Fuel = fuel, fuel
		ienv, cenv := fuzzEnv(p), fuzzEnv(p)

		_, ierr := ivm.Run(p, ienv)
		_, cerr := cvm.RunCompiled(c, cenv)

		if (ierr == nil) != (cerr == nil) {
			t.Fatalf("outcome diverged: interp err=%v, compiled err=%v", ierr, cerr)
		}
		if ierr != nil {
			var it, ct *Trap
			if !errors.As(ierr, &it) || !errors.As(cerr, &ct) {
				t.Fatalf("non-trap errors: interp %v, compiled %v", ierr, cerr)
			}
			if *it != *ct {
				t.Fatalf("traps diverged: interp %+v, compiled %+v", *it, *ct)
			}
		}
		for _, s := range []struct {
			name       string
			ivec, cvec []int64
		}{
			{"packet", ienv.Packet, cenv.Packet},
			{"msg", ienv.Msg, cenv.Msg},
			{"global", ienv.Global, cenv.Global},
		} {
			if !reflect.DeepEqual(s.ivec, s.cvec) {
				t.Fatalf("%s state diverged: interp %v, compiled %v", s.name, s.ivec, s.cvec)
			}
		}
		if !reflect.DeepEqual(ienv.Arrays, cenv.Arrays) {
			t.Fatalf("array pool diverged: interp %v, compiled %v", ienv.Arrays, cenv.Arrays)
		}
	})
}
