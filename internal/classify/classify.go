// Package classify implements Eden's application-level traffic
// classification (§3.3). Stages — applications, libraries or the enclave
// itself — declare the fields they can classify messages on (Table 2) and
// hold classification rules, organised into rule-sets, that map a message
// to a class plus the metadata that should accompany it:
//
//	<classifier> -> [class_name, {meta-data}]
//
// A message matches at most one rule per rule-set (rules are ordered;
// first match wins), and a message may belong to one class per rule-set.
// Externally a class is referred to by its fully qualified name,
// stage.ruleset.class — the name the enclave's match-action tables match
// on.
package classify

import (
	"fmt"
	"strings"
)

// Wildcard is the pattern that matches any field value. The paper writes
// both "*" (match anything) and "-" (field not examined); they classify
// identically.
const Wildcard = "*"

// NotExamined is the alternate wildcard spelling from Figure 6.
const NotExamined = "-"

// Pattern matches one classifier field of a message.
type Pattern struct {
	// Any matches every value.
	Any bool
	// Value is the exact value required when Any is false.
	Value string
}

// Matches reports whether the pattern accepts the value.
func (p Pattern) Matches(v string) bool { return p.Any || p.Value == v }

// String renders the pattern in rule syntax.
func (p Pattern) String() string {
	if p.Any {
		return Wildcard
	}
	return quoteIfNeeded(p.Value)
}

// Rule is one classification rule inside a rule-set.
type Rule struct {
	// ID is the stage-assigned rule identifier (returned by
	// createStageRule, Table 3).
	ID int
	// Match holds one pattern per classifier field of the stage, in the
	// stage's declared field order. Missing trailing patterns match any.
	Match []Pattern
	// Class is the class name messages matching this rule belong to
	// (unqualified; qualification adds stage and rule-set).
	Class string
	// Meta lists the metadata field names to attach to matching messages.
	Meta []string
}

// Matches reports whether the rule accepts a message with the given
// classifier field values (aligned with the stage's field order).
func (r *Rule) Matches(values []string) bool {
	for i, p := range r.Match {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		if !p.Matches(v) {
			return false
		}
	}
	return true
}

// String renders the rule in the paper's syntax.
func (r *Rule) String() string {
	pats := make([]string, len(r.Match))
	for i, p := range r.Match {
		pats[i] = p.String()
	}
	return fmt.Sprintf("<%s> -> [%s, {%s}]",
		strings.Join(pats, ", "), r.Class, strings.Join(r.Meta, ", "))
}

// RuleSet is an ordered list of rules; a message matches at most the first
// rule that accepts it. Different network functions use different rule-sets
// over the same traffic (§3.3: "Rule-sets are needed since different
// network functions may require stages to classify their data differently").
type RuleSet struct {
	Name   string
	Rules  []Rule
	nextID int
}

// Add appends a rule and returns its assigned identifier.
func (rs *RuleSet) Add(r Rule) int {
	rs.nextID++
	r.ID = rs.nextID
	rs.Rules = append(rs.Rules, r)
	return r.ID
}

// Remove deletes the rule with the given identifier. It reports whether a
// rule was removed.
func (rs *RuleSet) Remove(id int) bool {
	for i := range rs.Rules {
		if rs.Rules[i].ID == id {
			rs.Rules = append(rs.Rules[:i], rs.Rules[i+1:]...)
			return true
		}
	}
	return false
}

// Match returns the first rule accepting the values, or nil.
func (rs *RuleSet) Match(values []string) *Rule {
	for i := range rs.Rules {
		if rs.Rules[i].Matches(values) {
			return &rs.Rules[i]
		}
	}
	return nil
}

// Classification is the outcome of classifying a message against one
// rule-set.
type Classification struct {
	// Class is the fully qualified class name, stage.ruleset.class.
	Class string
	// Meta lists the metadata fields the stage should attach.
	Meta []string
}

// Classifier is the classification machinery of one stage: its declared
// classifier fields, the metadata it can generate, and its rule-sets.
type Classifier struct {
	// Stage is the stage name, e.g. "memcached".
	Stage string
	// Fields are the classifier field names, in match order (Table 2,
	// "Classifiers" column).
	Fields []string
	// MetaFields are the metadata field names the stage can generate
	// (Table 2, "Meta-data" column).
	MetaFields []string

	ruleSets []*RuleSet
}

// NewClassifier declares a stage's classification capabilities.
func NewClassifier(stage string, fields, metaFields []string) *Classifier {
	return &Classifier{Stage: stage, Fields: fields, MetaFields: metaFields}
}

// RuleSet returns the named rule-set, creating it if needed.
func (c *Classifier) RuleSet(name string) *RuleSet {
	for _, rs := range c.ruleSets {
		if rs.Name == name {
			return rs
		}
	}
	rs := &RuleSet{Name: name}
	c.ruleSets = append(c.ruleSets, rs)
	return rs
}

// RuleSets returns the rule-sets in creation order.
func (c *Classifier) RuleSets() []*RuleSet { return c.ruleSets }

// Classify evaluates all rule-sets over the message's classifier field
// values and returns one Classification per matching rule-set. A message
// can belong to many classes, one per rule-set (§3.3).
func (c *Classifier) Classify(values []string) []Classification {
	var out []Classification
	for _, rs := range c.ruleSets {
		if r := rs.Match(values); r != nil {
			out = append(out, Classification{
				Class: QualifiedClass(c.Stage, rs.Name, r.Class),
				Meta:  r.Meta,
			})
		}
	}
	return out
}

// AddRule validates and adds a rule to the named rule-set, returning the
// rule identifier. The number of patterns must not exceed the stage's
// classifier fields, and metadata names must be declared by the stage.
func (c *Classifier) AddRule(ruleSet string, r Rule) (int, error) {
	if len(r.Match) > len(c.Fields) {
		return 0, fmt.Errorf("classify: rule has %d patterns, stage %q has %d classifier fields",
			len(r.Match), c.Stage, len(c.Fields))
	}
	if r.Class == "" {
		return 0, fmt.Errorf("classify: rule has empty class name")
	}
	for _, m := range r.Meta {
		if !contains(c.MetaFields, m) {
			return 0, fmt.Errorf("classify: stage %q cannot generate metadata %q", c.Stage, m)
		}
	}
	return c.RuleSet(ruleSet).Add(r), nil
}

// QualifiedClass builds the fully qualified class name.
func QualifiedClass(stage, ruleSet, class string) string {
	return stage + "." + ruleSet + "." + class
}

// SplitClass splits a fully qualified class name into its parts. It
// returns ok=false if the name does not have exactly three components.
func SplitClass(qualified string) (stage, ruleSet, class string, ok bool) {
	parts := strings.SplitN(qualified, ".", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return "", "", "", false
	}
	return parts[0], parts[1], parts[2], true
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " ,<>[]{}\"") || s == "" {
		return fmt.Sprintf("%q", s)
	}
	return s
}
